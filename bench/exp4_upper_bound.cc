// Exp 4 / Figures 10, 11, 13: effect of the upper bound on CAP construction
// time, SRT, and CAP size. Varies upper in {1, 3, 5, 10} for Q2, Q5, Q6 on
// DBLP and Flickr, following the Section-7.2 schedule:
//   DBLP:   Q2 varies e1, e2; Q5 varies e1, e2 (e3 = 3, e4 = 2);
//           Q6 varies e1, e2 (e5 = e6 = 2).
//   Flickr: Q2 varies e1, e2; Q5 varies e2 (e3 = 1, e4 = 2);
//           Q6 varies e1, e3 (e4 = 2, e5 = 2, e6 = 1).
//
// Paper shape: cost grows with the upper bound but flattens out at larger
// bounds due to pruning driven by the neighbouring edges' stricter bounds;
// DR/DI beat IC especially at high bounds; all are orders faster than BU.

#include <cstdio>

#include "bench_util/dataset_registry.h"
#include "bench_util/experiment.h"
#include "bench_util/flags.h"
#include "bench_util/reporting.h"
#include "util/strings.h"

namespace boomer {
namespace bench {
namespace {

using query::Bounds;
using query::TemplateId;

std::vector<std::optional<Bounds>> Exp4Overrides(graph::DatasetKind kind,
                                                 TemplateId tmpl,
                                                 uint32_t upper) {
  const auto& t = query::GetTemplate(tmpl);
  std::vector<std::optional<Bounds>> overrides(t.edges.size());
  auto set = [&](size_t e, uint32_t u) {
    if (e < overrides.size()) overrides[e] = Bounds{1, u};
  };
  if (kind == graph::DatasetKind::kDblp) {
    switch (tmpl) {
      case TemplateId::kQ2:
        set(0, upper);
        set(1, upper);
        break;
      case TemplateId::kQ5:
        set(0, upper);
        set(1, upper);
        set(2, 3);
        set(3, 2);
        break;
      default:  // Q6
        set(0, upper);
        set(1, upper);
        set(4, 2);
        set(5, 2);
        break;
    }
  } else {  // Flickr
    switch (tmpl) {
      case TemplateId::kQ2:
        set(0, upper);
        set(1, upper);
        break;
      case TemplateId::kQ5:
        set(1, upper);
        set(2, 1);
        set(3, 2);
        break;
      default:  // Q6
        set(0, upper);
        set(2, upper);
        set(3, 2);
        set(4, 2);
        set(5, 1);
        break;
    }
  }
  return overrides;
}

int Main(int argc, char** argv) {
  bool help = false;
  auto flags_or = ParseCommonFlags(argc, argv, &help);
  if (help) return 0;
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const CommonFlags& flags = *flags_or;
  auto datasets = flags.datasets;
  if (datasets.empty()) {
    datasets = {graph::DatasetKind::kDblp, graph::DatasetKind::kFlickr};
  }
  auto queries = flags.queries;
  if (queries.empty()) {
    queries = {TemplateId::kQ2, TemplateId::kQ5, TemplateId::kQ6};
  }
  const uint32_t kUppers[] = {1, 3, 5, 10};

  PrintBanner("Exp 4: Varying upper bound", "Figures 10, 11, 13");
  DatasetRegistry registry(flags.cache_dir);
  Table table({"dataset", "query", "upper", "srt_IC", "srt_DR", "srt_DI",
               "cap_time_DI", "cap_size_DI", "results"});
  for (graph::DatasetKind kind : datasets) {
    graph::DatasetSpec spec{kind, flags.scale, flags.seed};
    auto dataset_or = registry.Get(spec);
    if (!dataset_or.ok()) {
      std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
      return 1;
    }
    const LoadedDataset& dataset = *dataset_or;
    for (TemplateId tmpl : queries) {
      for (uint32_t upper : kUppers) {
        auto overrides = Exp4Overrides(kind, tmpl, upper);
        auto instances_or = MakeInstances(dataset, tmpl, flags.instances,
                                          flags.seed + 4, overrides);
        if (!instances_or.ok()) continue;
        std::vector<double> srt[3], cap_time_di, cap_bytes_di;
        size_t results = 0;
        const core::Strategy strategies[3] = {core::Strategy::kImmediate,
                                              core::Strategy::kDeferToRun,
                                              core::Strategy::kDeferToIdle};
        for (const query::BphQuery& q : *instances_or) {
          for (int s = 0; s < 3; ++s) {
            BlendRunSpec run;
            run.strategy = strategies[s];
            run.max_results = flags.max_results;
            run.latency_factor = flags.LatencyFactor();
            auto result = RunBlend(dataset, q, run);
            if (!result.ok()) {
              std::fprintf(stderr, "%s\n",
                           result.status().ToString().c_str());
              return 1;
            }
            srt[s].push_back(result->report.srt_seconds);
            if (s == 2) {
              cap_time_di.push_back(result->report.cap_build_wall_seconds);
              cap_bytes_di.push_back(
                  static_cast<double>(result->report.cap_stats.size_bytes));
              results += result->report.num_results;
            }
          }
        }
        table.AddRow({graph::DatasetKindName(kind), query::TemplateName(tmpl),
                      StrFormat("%u", upper), StrFormat("%.4f s", Mean(srt[0])),
                      StrFormat("%.4f s", Mean(srt[1])),
                      StrFormat("%.4f s", Mean(srt[2])),
                      StrFormat("%.4f s", Mean(cap_time_di)),
                      HumanBytes(static_cast<uint64_t>(Mean(cap_bytes_di))),
                      StrFormat("%zu", results)});
      }
    }
  }
  table.Print();
  PrintPaperShape(
      "cost and CAP size grow with the upper bound but flatten at larger "
      "bounds (pruning via neighbouring stricter edges); DR/DI beat IC at "
      "higher bounds; CAP size stays modest (Figure 13).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace boomer

int main(int argc, char** argv) { return boomer::bench::Main(argc, argv); }
