// Exp 7 / Figures 15, 16, 17: impact of the query formulation sequence
// (QFS). Runs the Table-2 edge orders (S1..S3 for Q1, S1..S4 for Q6) on
// WordNet and Flickr for IC / DR / DI, reporting SRT, CAP construction time
// and CAP size per sequence.
//
// Paper shape: the deferment strategies are insensitive to QFS (they reorder
// edge processing internally); IC degrades ~2x when expensive edges are
// formulated early (Q1S1, Q6S1, Q6S2 on WordNet).

#include <cstdio>

#include "bench_util/dataset_registry.h"
#include "bench_util/experiment.h"
#include "bench_util/flags.h"
#include "bench_util/reporting.h"
#include "util/strings.h"

namespace boomer {
namespace bench {
namespace {

using query::TemplateId;

int Main(int argc, char** argv) {
  bool help = false;
  auto flags_or = ParseCommonFlags(argc, argv, &help);
  if (help) return 0;
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const CommonFlags& flags = *flags_or;
  auto datasets = flags.datasets;
  if (datasets.empty()) {
    datasets = {graph::DatasetKind::kWordNet, graph::DatasetKind::kFlickr};
  }
  auto queries = flags.queries;
  if (queries.empty()) {
    queries = {TemplateId::kQ1, TemplateId::kQ6};
  }

  PrintBanner("Exp 7: Impact of query formulation sequence", "Figures 15-17");
  DatasetRegistry registry(flags.cache_dir);
  Table table({"dataset", "query", "qfs", "srt_IC", "srt_DR", "srt_DI",
               "cap_time_IC", "cap_time_DI", "cap_size_IC", "cap_size_DI"});
  for (graph::DatasetKind kind : datasets) {
    graph::DatasetSpec spec{kind, flags.scale, flags.seed};
    auto dataset_or = registry.Get(spec);
    if (!dataset_or.ok()) {
      std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
      return 1;
    }
    const LoadedDataset& dataset = *dataset_or;
    for (TemplateId tmpl : queries) {
      if (tmpl != TemplateId::kQ1 && tmpl != TemplateId::kQ6) continue;
      // Exp-3 overrides make some edges expensive so QFS effects show.
      auto overrides = Exp3Overrides(kind, tmpl);
      auto instances_or = MakeInstances(dataset, tmpl, flags.instances,
                                        flags.seed + 7, overrides);
      if (!instances_or.ok()) continue;
      auto schedules = gui::QfsSchedules(tmpl);
      for (size_t sched = 0; sched < schedules.size(); ++sched) {
        std::vector<double> srt[3], cap_time[3], cap_bytes[3];
        const core::Strategy strategies[3] = {core::Strategy::kImmediate,
                                              core::Strategy::kDeferToRun,
                                              core::Strategy::kDeferToIdle};
        for (const query::BphQuery& q : *instances_or) {
          for (int s = 0; s < 3; ++s) {
            BlendRunSpec run;
            run.strategy = strategies[s];
            run.sequence = schedules[sched];
            run.max_results = flags.max_results;
            run.latency_factor = flags.LatencyFactor();
            auto result = RunBlend(dataset, q, run);
            if (!result.ok()) {
              std::fprintf(stderr, "%s\n",
                           result.status().ToString().c_str());
              return 1;
            }
            srt[s].push_back(result->report.srt_seconds);
            cap_time[s].push_back(result->report.cap_build_wall_seconds);
            cap_bytes[s].push_back(
                static_cast<double>(result->report.cap_stats.size_bytes));
          }
        }
        table.AddRow({graph::DatasetKindName(kind), query::TemplateName(tmpl),
                      gui::QfsName(sched), StrFormat("%.4f s", Mean(srt[0])),
                      StrFormat("%.4f s", Mean(srt[1])),
                      StrFormat("%.4f s", Mean(srt[2])),
                      StrFormat("%.4f s", Mean(cap_time[0])),
                      StrFormat("%.4f s", Mean(cap_time[2])),
                      HumanBytes(static_cast<uint64_t>(Mean(cap_bytes[0]))),
                      HumanBytes(static_cast<uint64_t>(Mean(cap_bytes[2])))});
      }
    }
  }
  table.Print();
  PrintPaperShape(
      "DR/DI are insensitive to formulation order (internal reordering of "
      "expensive edges); IC suffers (~2x SRT/CAP time/size) when expensive "
      "edges come early (Q1S1, Q6S1, Q6S2).");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace boomer

int main(int argc, char** argv) { return boomer::bench::Main(argc, argv); }
