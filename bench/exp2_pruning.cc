// Exp 2 / Figure 6: isolated-vertex pruning on vs off, Immediate strategy on
// DBLP. Metrics: (a) average SRT, (b) average CAP index size.
//
// Paper shape: pruning yields significantly smaller SRT and a more
// space-efficient CAP index.

#include <cstdio>

#include "bench_util/dataset_registry.h"
#include "bench_util/experiment.h"
#include "bench_util/flags.h"
#include "bench_util/reporting.h"
#include "util/strings.h"

namespace boomer {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  bool help = false;
  auto flags_or = ParseCommonFlags(argc, argv, &help);
  if (help) return 0;
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  const CommonFlags& flags = *flags_or;
  auto queries = flags.queries;
  if (queries.empty()) {
    queries.assign(std::begin(query::kAllTemplates),
                   std::end(query::kAllTemplates));
  }

  PrintBanner("Exp 2: Pruning vs No Pruning (IC, DBLP)", "Figure 6(a,b)");
  DatasetRegistry registry(flags.cache_dir);
  graph::DatasetSpec spec{graph::DatasetKind::kDblp, flags.scale, flags.seed};
  auto dataset_or = registry.Get(spec);
  if (!dataset_or.ok()) {
    std::fprintf(stderr, "%s\n", dataset_or.status().ToString().c_str());
    return 1;
  }
  const LoadedDataset& dataset = *dataset_or;

  Table table({"dataset", "query", "srt_prune", "srt_noprune", "cap_prune",
               "cap_noprune", "removed"});
  for (query::TemplateId tmpl : queries) {
    auto instances_or =
        MakeInstances(dataset, tmpl, flags.instances, flags.seed + 2);
    if (!instances_or.ok()) continue;
    std::vector<double> srt_on, srt_off, cap_on, cap_off;
    size_t removed = 0;
    for (const query::BphQuery& q : *instances_or) {
      BlendRunSpec run;
      run.strategy = core::Strategy::kImmediate;
      run.max_results = flags.max_results;
      run.latency_factor = flags.LatencyFactor();
      run.prune_isolated = true;
      auto on = RunBlend(dataset, q, run);
      run.prune_isolated = false;
      auto off = RunBlend(dataset, q, run);
      if (!on.ok() || !off.ok()) {
        std::fprintf(stderr, "blend failed\n");
        return 1;
      }
      srt_on.push_back(on->report.srt_seconds);
      srt_off.push_back(off->report.srt_seconds);
      cap_on.push_back(
          static_cast<double>(on->report.cap_stats.size_bytes));
      cap_off.push_back(
          static_cast<double>(off->report.cap_stats.size_bytes));
      removed += on->report.prune_removals;
    }
    table.AddRow({"dblp", query::TemplateName(tmpl),
                  StrFormat("%.4f s", Mean(srt_on)),
                  StrFormat("%.4f s", Mean(srt_off)),
                  HumanBytes(static_cast<uint64_t>(Mean(cap_on))),
                  HumanBytes(static_cast<uint64_t>(Mean(cap_off))),
                  StrFormat("%zu", removed / std::max<size_t>(1, flags.instances))});
  }
  table.Print();
  PrintPaperShape(
      "pruning isolated vertices gives smaller SRT (6a) and a more "
      "space-efficient CAP index (6b) due to reduced |V_qi|.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace boomer

int main(int argc, char** argv) { return boomer::bench::Main(argc, argv); }
