// Exp 3 / Figure 7: SRT of BU vs IC vs DR vs DI with the Section-7.2 bound
// overrides, on all three dataset analogs.
//
// Paper shape: BU is at least one order of magnitude slower than IC (and
// DNFs on some WordNet queries); IC is in turn at least one order slower
// than DR/DI on WordNet and DBLP; DI <= DR.

#include <cstdio>

#include "exp3_common.h"

namespace boomer {
namespace bench {
namespace {

int Main(int argc, char** argv) {
  bool help = false;
  auto flags_or = ParseCommonFlags(argc, argv, &help);
  if (help) return 0;
  if (!flags_or.ok()) {
    std::fprintf(stderr, "%s\n", flags_or.status().ToString().c_str());
    return 1;
  }
  PrintBanner("Exp 3: SRT of BU / IC / DR / DI", "Figure 7");
  auto cells_or = RunExp3Grid(*flags_or, /*run_bu=*/true);
  if (!cells_or.ok()) {
    std::fprintf(stderr, "%s\n", cells_or.status().ToString().c_str());
    return 1;
  }
  Table table({"dataset", "query", "srt_BU", "srt_IC", "srt_DR", "srt_DI",
               "results"});
  for (const Exp3Cell& cell : *cells_or) {
    table.AddRow({graph::DatasetKindName(cell.dataset),
                  query::TemplateName(cell.tmpl),
                  cell.bu_timed_out ? "DNF" : StrFormat("%.4f s", cell.bu_srt),
                  StrFormat("%.4f s", cell.srt[0]),
                  StrFormat("%.4f s", cell.srt[1]),
                  StrFormat("%.4f s", cell.srt[2]),
                  StrFormat("%zu", cell.results)});
  }
  table.Print();
  PrintPaperShape(
      "BU >> IC >> DR ~ DI on WordNet and DBLP (an order of magnitude per "
      "step); BU may DNF at the timeout; DI <= DR since idle latency drains "
      "the pool before Run.");
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace boomer

int main(int argc, char** argv) { return boomer::bench::Main(argc, argv); }
