// boomer_serve: concurrent serving driver.
//
// Replays N seeded formulation traces through the multi-session serving
// runtime and reports per-session SRT plus overload statistics — the
// command-line twin of the shell's `serve` command, with the admission and
// shedding knobs exposed.
//
// Usage:
//   boomer_serve [--sessions N] [--workers N] [--max-live N]
//                [--queue N] [--mem-budget BYTES] [--watchdog SECONDS]
//                [--strategy ic|dr|di] [--budget SECONDS]
//                [--dataset er|wordnet|dblp|flickr] [--scale F] [--seed N]
//                [--snapshot-dir DIR] [--wal-dir DIR] [--recover DIR]
//                [--wal-commit N] [--degrade-fraction F]
//                [--retain-corrupt N] [--faults SPEC] [--list-sites]
//                [--per-session]
//
// --dataset er (the default) generates a small Erdős–Rényi graph sized for
// quick runs; the named analogs accept --scale as the fraction of the
// paper's dataset size (see graph/datasets.h).
//
// --wal-dir enables per-session write-ahead logging; after a crash
// (kill -9 included), rerun with --recover pointed at that directory and
// the interrupted sessions are replayed before the new workload starts.
//
// Faults can also be armed via the BOOMER_FAULTS environment variable.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <algorithm>

#include "core/blender.h"
#include "core/preprocessor.h"
#include "graph/datasets.h"
#include "graph/generators.h"
#include "serve/session_manager.h"
#include "serve/workload.h"
#include "util/fault.h"
#include "util/strings.h"

namespace {

struct Args {
  size_t sessions = 64;
  size_t workers = 8;
  size_t max_live = 16;
  size_t queue = 32;
  size_t mem_budget = 0;
  double watchdog_seconds = 0.0;
  double srt_budget = 0.0;
  boomer::core::Strategy strategy = boomer::core::Strategy::kDeferToIdle;
  std::string dataset = "er";
  double scale = 0.02;
  uint64_t seed = 7;
  std::string snapshot_dir = ".";
  std::string wal_dir;
  std::string recover_dir;
  size_t wal_commit = 8;
  double degrade_fraction = 0.75;
  size_t retain_corrupt = 8;
  std::string faults;
  bool per_session = false;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--sessions N] [--workers N] [--max-live N] [--queue N]\n"
      "          [--mem-budget BYTES] [--watchdog SECONDS]\n"
      "          [--strategy ic|dr|di] [--budget SECONDS]\n"
      "          [--dataset er|wordnet|dblp|flickr] [--scale F] [--seed N]\n"
      "          [--snapshot-dir DIR] [--wal-dir DIR] [--recover DIR]\n"
      "          [--wal-commit N] [--degrade-fraction F]\n"
      "          [--retain-corrupt N] [--faults SPEC] [--list-sites]\n"
      "          [--per-session]\n",
      argv0);
  std::exit(2);
}

bool ParseSize(const char* text, size_t* out) {
  auto v = boomer::ParseInt64(text);
  if (!v.ok() || *v < 0) return false;
  *out = static_cast<size_t>(*v);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using boomer::core::Strategy;
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    if (flag == "--sessions") {
      if (!ParseSize(next(), &args.sessions)) Usage(argv[0]);
    } else if (flag == "--workers") {
      if (!ParseSize(next(), &args.workers)) Usage(argv[0]);
    } else if (flag == "--max-live") {
      if (!ParseSize(next(), &args.max_live)) Usage(argv[0]);
    } else if (flag == "--queue") {
      if (!ParseSize(next(), &args.queue)) Usage(argv[0]);
    } else if (flag == "--mem-budget") {
      if (!ParseSize(next(), &args.mem_budget)) Usage(argv[0]);
    } else if (flag == "--watchdog") {
      auto v = boomer::ParseDouble(next());
      if (!v.ok()) Usage(argv[0]);
      args.watchdog_seconds = *v;
    } else if (flag == "--budget") {
      auto v = boomer::ParseDouble(next());
      if (!v.ok()) Usage(argv[0]);
      args.srt_budget = *v;
    } else if (flag == "--strategy") {
      const std::string s = next();
      if (s == "ic") {
        args.strategy = Strategy::kImmediate;
      } else if (s == "dr") {
        args.strategy = Strategy::kDeferToRun;
      } else if (s == "di") {
        args.strategy = Strategy::kDeferToIdle;
      } else {
        Usage(argv[0]);
      }
    } else if (flag == "--dataset") {
      args.dataset = next();
    } else if (flag == "--scale") {
      auto v = boomer::ParseDouble(next());
      if (!v.ok() || *v <= 0.0) Usage(argv[0]);
      args.scale = *v;
    } else if (flag == "--seed") {
      auto v = boomer::ParseInt64(next());
      if (!v.ok() || *v < 0) Usage(argv[0]);
      args.seed = static_cast<uint64_t>(*v);
    } else if (flag == "--snapshot-dir") {
      args.snapshot_dir = next();
    } else if (flag == "--wal-dir") {
      args.wal_dir = next();
    } else if (flag == "--recover") {
      args.recover_dir = next();
    } else if (flag == "--wal-commit") {
      if (!ParseSize(next(), &args.wal_commit)) Usage(argv[0]);
    } else if (flag == "--degrade-fraction") {
      auto v = boomer::ParseDouble(next());
      if (!v.ok() || *v < 0.0 || *v > 1.0) Usage(argv[0]);
      args.degrade_fraction = *v;
    } else if (flag == "--retain-corrupt") {
      if (!ParseSize(next(), &args.retain_corrupt)) Usage(argv[0]);
    } else if (flag == "--faults") {
      args.faults = next();
    } else if (flag == "--list-sites") {
      // Dump the fault-site catalog (names valid as --faults spec keys).
      std::fputs(boomer::fault::KnownSitesToString().c_str(), stdout);
      return 0;
    } else if (flag == "--per-session") {
      args.per_session = true;
    } else {
      Usage(argv[0]);
    }
  }

  boomer::StatusOr<boomer::graph::Graph> g_or =
      boomer::Status::InvalidArgument("no dataset");
  if (args.dataset == "er") {
    g_or = boomer::graph::GenerateErdosRenyi(2000, 6000, 5, args.seed);
  } else {
    auto kind = boomer::graph::DatasetKindFromName(args.dataset);
    if (!kind.ok()) {
      std::fprintf(stderr, "unknown dataset '%s'\n", args.dataset.c_str());
      return 1;
    }
    boomer::graph::DatasetSpec spec;
    spec.kind = *kind;
    spec.scale = args.scale;
    spec.seed = args.seed;
    g_or = boomer::graph::GenerateDataset(spec);
  }
  if (!g_or.ok()) {
    std::fprintf(stderr, "graph generation failed: %s\n",
                 g_or.status().ToString().c_str());
    return 1;
  }
  boomer::graph::Graph graph = std::move(g_or).value();
  boomer::core::PreprocessOptions prep_options;
  prep_options.t_avg_samples = 2000;
  auto prep_or = boomer::core::Preprocess(graph, prep_options);
  if (!prep_or.ok()) {
    std::fprintf(stderr, "preprocess failed: %s\n",
                 prep_or.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %s scale %.3f — %zu vertices, %zu edges\n",
              args.dataset.c_str(), args.scale, graph.NumVertices(),
              graph.NumEdges());

  if (!args.faults.empty()) {
    boomer::Status s = boomer::fault::Configure(args.faults);
    if (!s.ok()) {
      std::fprintf(stderr, "bad --faults: %s\n", s.ToString().c_str());
      return 1;
    }
  }

  boomer::serve::ServeOptions serve_options;
  serve_options.num_workers = args.workers;
  serve_options.max_live_sessions = args.max_live;
  serve_options.max_queued_actions = args.queue;
  serve_options.memory_budget_bytes = args.mem_budget;
  serve_options.stuck_session_seconds = args.watchdog_seconds;
  serve_options.snapshot_dir = args.snapshot_dir;
  serve_options.wal_dir = args.wal_dir;
  serve_options.wal_group_commit = args.wal_commit;
  serve_options.degrade_fraction = args.degrade_fraction;
  serve_options.retain_corrupt = args.retain_corrupt;
  serve_options.blender.strategy = args.strategy;
  serve_options.blender.srt_budget_seconds = args.srt_budget;
  boomer::serve::SessionManager manager(graph, *prep_or, serve_options);

  if (!args.recover_dir.empty()) {
    auto recovered_or = manager.RecoverAll(args.recover_dir);
    if (!recovered_or.ok()) {
      std::fprintf(stderr, "recovery sweep failed: %s\n",
                   recovered_or.status().ToString().c_str());
      return 1;
    }
    for (const boomer::serve::RecoveryOutcome& r : *recovered_or) {
      const std::string failed =
          r.status.ok() ? "" : " FAILED: " + r.status.ToString();
      std::printf(
          "recovered session %llu -> %llu: %zu action(s) from %s%s%s%s\n",
          static_cast<unsigned long long>(r.original_id),
          static_cast<unsigned long long>(r.new_id), r.actions_replayed,
          r.from_wal ? "wal" : "snapshot",
          r.torn_tail ? " (torn tail truncated)" : "",
          r.quarantined ? " (corrupt part quarantined)" : "",
          failed.c_str());
    }
  }

  auto traces =
      boomer::serve::SeededTraces(graph, args.sessions, args.seed);
  boomer::serve::ClientOptions client_options;
  client_options.client_threads =
      std::min<size_t>(args.sessions, args.workers * 4);
  boomer::serve::ReplaySummary summary =
      boomer::serve::ReplayConcurrently(&manager, traces, client_options);

  size_t completed = 0;
  size_t truncated = 0;
  size_t unfinished = 0;
  size_t resumes = 0;
  size_t submit_retries = 0;
  double srt_sum = 0.0;
  double srt_max = 0.0;
  for (const boomer::serve::ClientReport& c : summary.clients) {
    resumes += static_cast<size_t>(c.resumes);
    submit_retries += static_cast<size_t>(c.submit_retries);
    if (args.per_session) {
      std::printf(
          "session %4zu: %s srt=%.3fs results=%zu truncation=%s "
          "resumes=%d retries=%d status=%s\n",
          c.trace_index, c.completed ? "done " : "UNFIN", c.report.srt_seconds,
          c.results.size(),
          boomer::core::TruncationReasonName(c.report.truncation), c.resumes,
          c.submit_retries, c.final_status.ToString().c_str());
    }
    if (!c.completed) {
      ++unfinished;
      continue;
    }
    ++completed;
    if (c.report.truncated()) ++truncated;
    srt_sum += c.report.srt_seconds;
    srt_max = std::max(srt_max, c.report.srt_seconds);
  }

  const boomer::serve::ServeStats& stats = summary.stats;
  std::printf(
      "served %zu session(s) | workers %zu | completed %zu "
      "(%zu truncated) | unfinished %zu\n",
      summary.clients.size(), args.workers, completed, truncated, unfinished);
  if (completed > 0) {
    std::printf("SRT mean %.3f s, max %.3f s\n", srt_sum / completed,
                srt_max);
  }
  std::printf(
      "overload: admission shed %llu | backpressured %llu | evictions %llu "
      "| resumes %zu | submit retries %zu | watchdog cancels %llu\n",
      static_cast<unsigned long long>(stats.admission_rejected),
      static_cast<unsigned long long>(stats.actions_rejected),
      static_cast<unsigned long long>(stats.evictions), resumes,
      submit_retries,
      static_cast<unsigned long long>(stats.watchdog_cancels));
  std::printf("peak: %zu live session(s), %zu CAP bytes\n",
              stats.peak_live_sessions, stats.peak_cap_bytes);
  std::printf(
      "health: %s (peak %s) | degraded %llu | shed stalls %llu | "
      "recovered %llu (%llu failed) | wal records %llu\n",
      boomer::serve::HealthStateName(summary.final_health),
      boomer::serve::HealthStateName(summary.peak_health),
      static_cast<unsigned long long>(stats.sessions_degraded),
      static_cast<unsigned long long>(stats.shed_stalls),
      static_cast<unsigned long long>(stats.sessions_recovered),
      static_cast<unsigned long long>(stats.recovery_failures),
      static_cast<unsigned long long>(stats.wal_records));
  if (!args.faults.empty()) {
    std::printf("fault sites:\n%s", boomer::fault::StatsToString().c_str());
  }
  return 0;
}
