#!/usr/bin/env bash
# Correctness gate: project lint (+ its self-test), the clang
# thread-safety build (when clang is installed), the chaos/crash/
# chaos-e2e/bench labels, build + test the tree under ASan/UBSan with
# -Werror and DCHECKs pinned on, run the concurrency suite under TSan,
# then (when the binaries exist) clang-format / clang-tidy. Any finding
# exits non-zero.
#
# Usage: tools/ci/check.sh [--skip-sanitizers]
#
# The sanitizer passes use the `asan-ubsan` / `tsan` CMake presets and build
# into build-asan-ubsan/ / build-tsan/, leaving the default build/ tree
# untouched. --skip-sanitizers skips both.
set -u -o pipefail

cd "$(dirname "$0")/../.."
REPO_ROOT="$(pwd)"

SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *)
      echo "usage: $0 [--skip-sanitizers]" >&2
      exit 2
      ;;
  esac
done

FAILURES=0
step() { echo; echo "==== $* ===="; }
fail() {
  echo "FAILED: $*" >&2
  FAILURES=$((FAILURES + 1))
}

step "project lint (tools/lint/boomer_lint.py)"
# Explicit interpreter check: a missing python3 must fail the gate loudly,
# not read as "lint passed" — this step is also what the ctest wrapper
# (add_test boomer_lint) relies on, so its exit code must never be masked.
if ! command -v python3 >/dev/null 2>&1; then
  fail "boomer_lint (python3 not found)"
else
  python3 tools/lint/boomer_lint.py --root "$REPO_ROOT" || fail "boomer_lint"
  python3 tools/lint/boomer_lint_selftest.py || fail "boomer_lint_selftest"
fi

step "clang-format diff check"
if command -v clang-format >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  if ! clang-format --dry-run -Werror \
      $(git ls-files 'src/**.cc' 'src/**.h' 'tests/**.cc' 'tests/**.h' \
                     'bench/**.cc' 'bench/**.h' 'tools/**.cc' 'examples/**.cc'); then
    fail "clang-format"
  fi
else
  echo "clang-format not found; skipping format check" >&2
fi

step "thread-safety gate (clang -Wthread-safety over src/ and tools/)"
if command -v clang++ >/dev/null 2>&1; then
  # The clang-tsa preset builds the whole tree with -Wthread-safety
  # -Wthread-safety-beta -Werror, enforcing every BOOMER_GUARDED_BY /
  # BOOMER_REQUIRES annotation in util/mutex.h at compile time.
  cmake --preset clang-tsa || fail "cmake configure (clang-tsa)"
  cmake --build --preset clang-tsa -j "$(nproc)" || fail "thread-safety build"
else
  echo "clang++ not found; skipping thread-safety gate (annotations are" \
       "no-ops under this compiler)" >&2
fi

step "chaos gate (ctest -L chaos: fault schedules + corruption fuzz)"
if [ -d build ]; then
  cmake --build build -j "$(nproc)" --target chaos_test || fail "chaos build"
  ctest --test-dir build -L chaos --output-on-failure || fail "chaos ctest"
else
  echo "build/ not configured; chaos label runs in the sanitizer pass" >&2
fi

# Crash-durability gate: the in-process RecoverAll tests plus the
# fork/SIGKILL harness (tools/boomer_crashtest — seeded schedules that kill
# a serving child at armed WAL fault sites, recover, and require
# bit-identical results).
step "crash gate (ctest -L crash: WAL recovery + SIGKILL schedules)"
if [ -d build ]; then
  cmake --build build -j "$(nproc)" --target crash_test boomer_crashtest \
    || fail "crash build"
  ctest --test-dir build -L crash --output-on-failure || fail "crash ctest"
else
  echo "build/ not configured; crash label runs in the sanitizer pass" >&2
fi

# Composite chaos gate: tools/boomer_chaos composes adversarial traces,
# resource-exhaustion fault classes, overload profiles, and SIGKILL crashes
# into 50 seeded schedules and asserts the standing invariants (typed
# degradation, bit-identical recovery, exact-or-subset results); the JSON
# report lands in build/tests/chaos_e2e_workdir/ for archiving.
step "chaos-e2e gate (ctest -L chaos-e2e: composite chaos schedules)"
if [ -d build ]; then
  cmake --build build -j "$(nproc)" --target boomer_chaos \
    || fail "chaos-e2e build"
  ctest --test-dir build -L chaos-e2e --output-on-failure \
    || fail "chaos-e2e ctest"
else
  echo "build/ not configured; chaos-e2e label runs in the sanitizer pass" >&2
fi

# Bench pipeline gate: the comparator's self-test plus an end-to-end smoke
# run of tools/boomer_bench (tiny dataset, 3 iterations, JSON validated and
# self-compared). Proves the perf-regression tooling works before CI trusts
# it to gate real numbers.
step "bench-smoke gate (ctest -L bench-smoke)"
if [ -d build ]; then
  cmake --build build -j "$(nproc)" --target boomer_bench \
    || fail "bench-smoke build"
  ctest --test-dir build -L bench-smoke --output-on-failure \
    || fail "bench-smoke ctest"
else
  echo "build/ not configured; bench-smoke label runs in the sanitizer pass" >&2
fi

supports_tsan() {
  # Probe the toolchain: some container images ship a compiler without the
  # tsan runtime, in which case the gate is skipped with a loud warning
  # (mirroring the clang-format / clang-tidy skip behavior).
  local probe_dir probe_src
  probe_dir="$(mktemp -d)" || return 1
  probe_src="$probe_dir/probe.cc"
  echo 'int main() { return 0; }' > "$probe_src"
  if c++ -fsanitize=thread -o "$probe_dir/probe" "$probe_src" >/dev/null 2>&1 \
      && "$probe_dir/probe"; then
    rm -rf "$probe_dir"
    return 0
  fi
  rm -rf "$probe_dir"
  return 1
}

if [ "$SKIP_SANITIZERS" -eq 0 ]; then
  # The serving runtime's suite (`concurrency` label: session manager,
  # thread pool, watchdog, fault-registry races, the >=200-session stress)
  # must be data-race-free, not merely green: TSAN_OPTIONS=halt_on_error=1
  # (set in the tsan test preset) turns the first race into a failure.
  step "tsan gate (ctest -L concurrency under ThreadSanitizer)"
  if supports_tsan; then
    cmake --preset tsan || fail "cmake configure (tsan)"
    cmake --build --preset tsan -j "$(nproc)" || fail "build (tsan)"
    ctest --preset tsan -L concurrency || fail "ctest concurrency (tsan)"
  else
    echo "toolchain cannot build/run -fsanitize=thread; skipping tsan gate" >&2
  fi

  step "configure (asan-ubsan preset)"
  cmake --preset asan-ubsan || fail "cmake configure"

  step "build (asan-ubsan, -Werror)"
  cmake --build --preset asan-ubsan -j "$(nproc)" || fail "build"

  step "ctest (asan-ubsan; includes boomer_lint)"
  ctest --preset asan-ubsan || fail "ctest"

  # The chaos label again, explicitly under sanitizers: injected faults and
  # corrupt inputs must not just be rejected but rejected without a single
  # wild read, overflow, or leak.
  step "ctest chaos label (asan-ubsan)"
  ctest --preset asan-ubsan -L chaos || fail "ctest chaos (asan-ubsan)"

  # And the crash label: recovery code paths parse bytes a dead process left
  # behind — exactly where a wild read would hide. The SIGKILL harness runs
  # here too (ASan shadows the child as well as the recovering parent).
  step "ctest crash label (asan-ubsan)"
  ctest --preset asan-ubsan -L crash || fail "ctest crash (asan-ubsan)"

  # And the composite chaos schedules: the orchestrator's fault/overload/
  # crash compositions must hold their invariants without a single wild
  # read or leak either.
  step "ctest chaos-e2e label (asan-ubsan)"
  ctest --preset asan-ubsan -L chaos-e2e || fail "ctest chaos-e2e (asan-ubsan)"
fi

step "clang-tidy gate"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset tidy || fail "cmake configure (tidy)"
  cmake --build --preset tidy -j "$(nproc)" || fail "clang-tidy build"
else
  echo "clang-tidy not found; skipping tidy gate" >&2
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "check.sh: $FAILURES step(s) failed"
  exit 1
fi
echo "check.sh: all checks passed"
