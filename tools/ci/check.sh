#!/usr/bin/env bash
# Correctness gate: build + test the tree under ASan/UBSan with -Werror and
# DCHECKs pinned on, then run the project lint and (when the binaries exist)
# clang-format / clang-tidy. Any finding exits non-zero.
#
# Usage: tools/ci/check.sh [--skip-sanitizers]
#
# The sanitizer pass uses the `asan-ubsan` CMake preset and builds into
# build-asan-ubsan/, leaving the default build/ tree untouched.
set -u -o pipefail

cd "$(dirname "$0")/../.."
REPO_ROOT="$(pwd)"

SKIP_SANITIZERS=0
for arg in "$@"; do
  case "$arg" in
    --skip-sanitizers) SKIP_SANITIZERS=1 ;;
    *)
      echo "usage: $0 [--skip-sanitizers]" >&2
      exit 2
      ;;
  esac
done

FAILURES=0
step() { echo; echo "==== $* ===="; }
fail() {
  echo "FAILED: $*" >&2
  FAILURES=$((FAILURES + 1))
}

step "project lint (tools/lint/boomer_lint.py)"
python3 tools/lint/boomer_lint.py --root "$REPO_ROOT" || fail "boomer_lint"

step "clang-format diff check"
if command -v clang-format >/dev/null 2>&1; then
  # shellcheck disable=SC2046
  if ! clang-format --dry-run -Werror \
      $(git ls-files 'src/**.cc' 'src/**.h' 'tests/**.cc' 'tests/**.h' \
                     'bench/**.cc' 'bench/**.h' 'tools/**.cc' 'examples/**.cc'); then
    fail "clang-format"
  fi
else
  echo "clang-format not found; skipping format check" >&2
fi

step "chaos gate (ctest -L chaos: fault schedules + corruption fuzz)"
if [ -d build ]; then
  cmake --build build -j "$(nproc)" --target chaos_test || fail "chaos build"
  ctest --test-dir build -L chaos --output-on-failure || fail "chaos ctest"
else
  echo "build/ not configured; chaos label runs in the sanitizer pass" >&2
fi

if [ "$SKIP_SANITIZERS" -eq 0 ]; then
  step "configure (asan-ubsan preset)"
  cmake --preset asan-ubsan || fail "cmake configure"

  step "build (asan-ubsan, -Werror)"
  cmake --build --preset asan-ubsan -j "$(nproc)" || fail "build"

  step "ctest (asan-ubsan; includes boomer_lint)"
  ctest --preset asan-ubsan || fail "ctest"

  # The chaos label again, explicitly under sanitizers: injected faults and
  # corrupt inputs must not just be rejected but rejected without a single
  # wild read, overflow, or leak.
  step "ctest chaos label (asan-ubsan)"
  ctest --preset asan-ubsan -L chaos || fail "ctest chaos (asan-ubsan)"
fi

step "clang-tidy gate"
if command -v clang-tidy >/dev/null 2>&1; then
  cmake --preset tidy || fail "cmake configure (tidy)"
  cmake --build --preset tidy -j "$(nproc)" || fail "clang-tidy build"
else
  echo "clang-tidy not found; skipping tidy gate" >&2
fi

echo
if [ "$FAILURES" -ne 0 ]; then
  echo "check.sh: $FAILURES step(s) failed"
  exit 1
fi
echo "check.sh: all checks passed"
