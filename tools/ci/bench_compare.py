#!/usr/bin/env python3
"""Compare BENCH_*.json result files and gate on performance regressions.

Usage:
    bench_compare.py <baseline> <candidate> [--threshold=0.10]
                     [--min-floor=1e-3] [--stat=p95]
    bench_compare.py --write-baseline <src> <dest-dir>
    bench_compare.py --self-test

<baseline> and <candidate> are either single BENCH_*.json files or
directories; directories are matched by file name (a candidate file with
no baseline counterpart is reported but not gated — new benchmarks must be
able to land).

Gating policy: only series whose name contains a *gated key* ("srt" or
"cap_build") fail the run; everything else is informational. A gated
series fails when

    candidate[stat] > baseline[stat] * (1 + threshold)

with two escape hatches: baselines below --min-floor (seconds) are too
noisy to gate (a 0.2 ms p95 doubling is scheduler jitter, not a
regression), and improvements are never gated. Non-gated series that move
beyond the threshold emit a warning so drift is visible without blocking.

Schema discipline: files written by different schema versions are not
comparable; a schema_version mismatch is a hard failure, never a silent
skip. boomer_bench appends a "# crc32 ..." integrity footer (see
util/atomic_file.h kText); it is stripped before JSON parsing.
"""

import argparse
import copy
import json
import os
import shutil
import sys
import tempfile

GATED_KEYS = ("srt", "cap_build")
EXPECTED_SCHEMA = 1


def load_bench(path):
    """Parses one BENCH_*.json, stripping the atomic-file CRC footer."""
    with open(path, "r", encoding="utf-8") as f:
        payload = "".join(line for line in f if not line.startswith("# crc32"))
    return json.loads(payload)


def is_gated(series_name):
    return any(key in series_name for key in GATED_KEYS)


def collect_files(path):
    """Maps file name -> full path for a file or directory argument."""
    if os.path.isdir(path):
        return {
            name: os.path.join(path, name)
            for name in sorted(os.listdir(path))
            if name.startswith("BENCH_") and name.endswith(".json")
        }
    return {os.path.basename(path): path}


def compare_one(name, base, cand, args):
    """Compares one bench file pair. Returns a list of failure strings."""
    failures = []
    if base.get("schema_version") != EXPECTED_SCHEMA or cand.get(
            "schema_version") != EXPECTED_SCHEMA:
        failures.append(
            f"{name}: schema_version mismatch (baseline="
            f"{base.get('schema_version')}, candidate="
            f"{cand.get('schema_version')}, expected={EXPECTED_SCHEMA})")
        return failures
    base_series = base.get("series", {})
    cand_series = cand.get("series", {})
    for series, cstats in sorted(cand_series.items()):
        bstats = base_series.get(series)
        if bstats is None:
            print(f"  note: {name}:{series} has no baseline (new series)")
            continue
        old = bstats.get(args.stat, 0.0)
        new = cstats.get(args.stat, 0.0)
        if old <= 0:
            continue
        ratio = new / old
        delta_pct = (ratio - 1.0) * 100.0
        tag = f"{name}:{series} {args.stat} {old:.6g} -> {new:.6g} " \
              f"({delta_pct:+.1f}%)"
        if ratio <= 1.0 + args.threshold:
            continue
        if not is_gated(series):
            print(f"  warn: {tag} (not gated)")
            continue
        if old < args.min_floor:
            print(f"  warn: {tag} (baseline below --min-floor="
                  f"{args.min_floor:g}, too noisy to gate)")
            continue
        failures.append(tag)
    for series in sorted(set(base_series) - set(cand_series)):
        print(f"  note: {name}:{series} disappeared from candidate")
    return failures


def run_compare(args):
    base_files = collect_files(args.baseline)
    cand_files = collect_files(args.candidate)
    if not cand_files:
        print(f"error: no BENCH_*.json under {args.candidate}")
        return 2
    failures = []
    for name, cpath in sorted(cand_files.items()):
        bpath = base_files.get(name)
        if bpath is None:
            print(f"  note: {name} has no baseline file (new benchmark)")
            continue
        try:
            base = load_bench(bpath)
            cand = load_bench(cpath)
        except (OSError, json.JSONDecodeError) as e:
            failures.append(f"{name}: unreadable ({e})")
            continue
        failures.extend(compare_one(name, base, cand, args))
    if failures:
        print(f"FAIL: {len(failures)} gated regression(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"OK: {len(cand_files)} file(s) within +{args.threshold:.0%} "
          f"on {args.stat} for gated series ({', '.join(GATED_KEYS)})")
    return 0


def run_write_baseline(src, dest_dir):
    files = collect_files(src)
    if not files:
        print(f"error: no BENCH_*.json under {src}")
        return 2
    os.makedirs(dest_dir, exist_ok=True)
    for name, path in sorted(files.items()):
        shutil.copyfile(path, os.path.join(dest_dir, name))
        print(f"baseline <- {name}")
    return 0


def self_test():
    """End-to-end check of the gating logic with synthetic files."""
    base = {
        "schema_version": EXPECTED_SCHEMA,
        "bench": "exp3_srt",
        "meta": {"git_sha": "aaaa"},
        "iterations": [],
        "series": {
            "srt_seconds_DI": {"p50": 0.10, "p95": 0.20, "p99": 0.25,
                               "mean": 0.12, "n": 30},
            "cap_build_seconds_IC": {"p50": 0.05, "p95": 0.09, "p99": 0.10,
                                     "mean": 0.06, "n": 30},
            "pml_distance_us": {"p50": 1.0, "p95": 2.0, "p99": 3.0,
                                "mean": 1.2, "n": 30},
        },
        "metrics": {},
    }

    def run_pair(baseline, candidate, extra=None):
        with tempfile.TemporaryDirectory() as tmp:
            bdir = os.path.join(tmp, "base")
            cdir = os.path.join(tmp, "cand")
            os.makedirs(bdir)
            os.makedirs(cdir)
            with open(os.path.join(bdir, "BENCH_exp3_srt.json"), "w",
                      encoding="utf-8") as f:
                json.dump(baseline, f)
            with open(os.path.join(cdir, "BENCH_exp3_srt.json"), "w",
                      encoding="utf-8") as f:
                json.dump(candidate, f)
                # boomer_bench output carries this footer; exercise stripping
                f.write("\n# crc32 deadbeef payload=1\n")
            return main([bdir, cdir] + (extra or []))

    # 1. Identical files compare clean.
    assert run_pair(base, copy.deepcopy(base)) == 0, "identical must pass"

    # 2. A +20% regression on a gated series fails.
    worse = copy.deepcopy(base)
    worse["series"]["srt_seconds_DI"]["p95"] *= 1.20
    assert run_pair(base, worse) == 1, "+20% gated must fail"

    # 3. The same regression on a non-gated series only warns.
    drift = copy.deepcopy(base)
    drift["series"]["pml_distance_us"]["p95"] *= 1.50
    assert run_pair(base, drift) == 0, "non-gated drift must warn, not fail"

    # 4. Schema version mismatch is a hard failure.
    alien = copy.deepcopy(base)
    alien["schema_version"] = EXPECTED_SCHEMA + 1
    assert run_pair(base, alien) == 1, "schema mismatch must fail"

    # 5. Tiny baselines are exempt (noise floor).
    noisy_base = copy.deepcopy(base)
    noisy_base["series"]["srt_seconds_DI"]["p95"] = 1e-5
    noisy_cand = copy.deepcopy(noisy_base)
    noisy_cand["series"]["srt_seconds_DI"]["p95"] = 5e-5
    assert run_pair(noisy_base, noisy_cand) == 0, "sub-floor must not gate"

    # 6. An improvement never fails, and a raised threshold forgives.
    better = copy.deepcopy(base)
    better["series"]["srt_seconds_DI"]["p95"] *= 0.5
    assert run_pair(base, better) == 0, "improvement must pass"
    assert run_pair(base, worse, ["--threshold=0.5"]) == 0, \
        "raised threshold must forgive +20%"

    print("self-test OK: 7 scenarios")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", nargs="?",
                        help="baseline BENCH_*.json file or directory")
    parser.add_argument("candidate", nargs="?",
                        help="candidate BENCH_*.json file or directory")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="allowed relative increase on gated series "
                             "(default 0.10 = +10%%)")
    parser.add_argument("--min-floor", type=float, default=1e-3,
                        help="skip gating when the baseline stat is below "
                             "this (default 1e-3: sub-millisecond p95s are "
                             "scheduler noise)")
    parser.add_argument("--stat", default="p95",
                        choices=["p50", "p95", "p99", "mean"],
                        help="which series statistic to gate on")
    parser.add_argument("--write-baseline", action="store_true",
                        help="copy <baseline> (src) into <candidate> (dest "
                             "dir) instead of comparing")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in gating-logic test")
    args = parser.parse_args(argv)
    if args.self_test:
        return self_test()
    if args.baseline is None or args.candidate is None:
        parser.print_usage()
        return 2
    if args.write_baseline:
        return run_write_baseline(args.baseline, args.candidate)
    return run_compare(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
