#!/usr/bin/env bash
# Bench smoke gate: proves the benchmark pipeline itself works — driver
# runs, JSON is well-formed and schema-versioned, and bench_compare.py
# accepts a file against itself. Registered as `ctest -L bench-smoke`.
#
# usage: bench_smoke.sh <boomer_bench-binary> <repo-root> [out-dir]
set -u

BENCH_BIN=${1:?usage: bench_smoke.sh <boomer_bench> <repo-root> [out-dir]}
REPO_ROOT=${2:?usage: bench_smoke.sh <boomer_bench> <repo-root> [out-dir]}
OUT_DIR=${3:-$(mktemp -d)}
COMPARE="$REPO_ROOT/tools/ci/bench_compare.py"

fail() { echo "bench-smoke FAIL: $*" >&2; exit 1; }

mkdir -p "$OUT_DIR"
# The dataset cache lives next to the output so repeated CI runs stay fast
# without touching the source tree.
"$BENCH_BIN" exp3_srt --smoke --out="$OUT_DIR" \
    --cache-dir="$OUT_DIR/data" || fail "boomer_bench exp3_srt --smoke"

JSON="$OUT_DIR/BENCH_exp3_srt.json"
[ -s "$JSON" ] || fail "missing or empty $JSON"

python3 - "$JSON" <<'EOF' || fail "JSON validation"
import json, sys
lines = [l for l in open(sys.argv[1]) if not l.startswith("# crc32")]
d = json.loads("".join(lines))
assert d["schema_version"] == 1, d["schema_version"]
assert d["bench"] == "exp3_srt"
assert d["series"], "no series recorded"
assert any("srt_seconds" in k for k in d["series"]), "no SRT series"
assert any("srt_drain" in k for k in d["series"]), "no SRT decomposition"
assert "counters" in d["metrics"], "no obs metrics snapshot"
print("json ok: %d series" % len(d["series"]))
EOF

python3 "$COMPARE" "$JSON" "$JSON" || fail "self-comparison must pass"

echo "bench-smoke OK: $JSON"
