// Interactive BOOMER shell (see src/shell/shell.h for the command set).
//
//   ./build/tools/boomer_shell                 # REPL on stdin
//   ./build/tools/boomer_shell < session.txt   # scripted session
//
// Example session:
//   gen dblp 0.02 42
//   vertex 3
//   vertex 7
//   edge 0 1 1 3
//   run
//   show 0

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>

#include "shell/shell.h"
#include "util/fault.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--validate] [--budget <seconds>] [--fault <spec>]\n"
               "  --validate         deep-verify invariants after every "
               "command\n"
               "  --budget <seconds> SRT budget for run (0 = unbounded)\n"
               "  --fault <spec>     arm fault injection, e.g. "
               "'core/pvs=p0.1,seed=7'\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  boomer::shell::ShellOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      // Deep-verify Graph/PML/CAP invariants after every command.
      options.validate_after_command = true;
    } else if (std::strcmp(argv[i], "--budget") == 0 && i + 1 < argc) {
      char* end = nullptr;
      options.srt_budget_seconds = std::strtod(argv[++i], &end);
      if (end == nullptr || *end != '\0' || options.srt_budget_seconds < 0) {
        return Usage(argv[0]);
      }
    } else if (std::strcmp(argv[i], "--fault") == 0 && i + 1 < argc) {
      boomer::Status status = boomer::fault::Configure(argv[++i]);
      if (!status.ok()) {
        std::fprintf(stderr, "bad --fault spec: %s\n",
                     status.ToString().c_str());
        return 2;
      }
    } else {
      return Usage(argv[0]);
    }
  }
  boomer::shell::Shell shell(options);
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("BOOMER shell — type 'help' for commands, 'quit' to exit.\n");
  }
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("boomer> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    auto trimmed_start = line.find_first_not_of(" \t");
    if (trimmed_start != std::string::npos) {
      std::string_view cmd(line.c_str() + trimmed_start);
      if (cmd == "quit" || cmd == "exit") break;
    }
    std::fputs(shell.Exec(line).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
