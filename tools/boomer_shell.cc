// Interactive BOOMER shell (see src/shell/shell.h for the command set).
//
//   ./build/tools/boomer_shell                 # REPL on stdin
//   ./build/tools/boomer_shell < session.txt   # scripted session
//
// Example session:
//   gen dblp 0.02 42
//   vertex 3
//   vertex 7
//   edge 0 1 1 3
//   run
//   show 0

#include <cstdio>
#include <iostream>
#include <string>
#include <unistd.h>

#include "shell/shell.h"

int main() {
  boomer::shell::Shell shell;
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("BOOMER shell — type 'help' for commands, 'quit' to exit.\n");
  }
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("boomer> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    auto trimmed_start = line.find_first_not_of(" \t");
    if (trimmed_start != std::string::npos) {
      std::string_view cmd(line.c_str() + trimmed_start);
      if (cmd == "quit" || cmd == "exit") break;
    }
    std::fputs(shell.Exec(line).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
