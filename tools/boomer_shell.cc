// Interactive BOOMER shell (see src/shell/shell.h for the command set).
//
//   ./build/tools/boomer_shell                 # REPL on stdin
//   ./build/tools/boomer_shell < session.txt   # scripted session
//
// Example session:
//   gen dblp 0.02 42
//   vertex 3
//   vertex 7
//   edge 0 1 1 3
//   run
//   show 0

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>

#include "shell/shell.h"

int main(int argc, char** argv) {
  boomer::shell::ShellOptions options;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      // Deep-verify Graph/PML/CAP invariants after every command.
      options.validate_after_command = true;
    } else {
      std::fprintf(stderr, "usage: %s [--validate]\n", argv[0]);
      return 2;
    }
  }
  boomer::shell::Shell shell(options);
  const bool interactive = isatty(fileno(stdin));
  if (interactive) {
    std::printf("BOOMER shell — type 'help' for commands, 'quit' to exit.\n");
  }
  std::string line;
  while (true) {
    if (interactive) {
      std::printf("boomer> ");
      std::fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    auto trimmed_start = line.find_first_not_of(" \t");
    if (trimmed_start != std::string::npos) {
      std::string_view cmd(line.c_str() + trimmed_start);
      if (cmd == "quit" || cmd == "exit") break;
    }
    std::fputs(shell.Exec(line).c_str(), stdout);
    std::fflush(stdout);
  }
  return 0;
}
