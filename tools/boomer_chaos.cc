// boomer_chaos: composite chaos orchestrator for the serving runtime
// (DESIGN.md §5g).
//
// Where boomer_crashtest sweeps one dimension (SIGKILL at WAL fault sites),
// this driver composes *four*: adversarial formulation traces
// (serve/workload.h AdversaryKind), resource-exhaustion faults (the
// ENOSPC/EIO/alloc error classes of util/fault.h), admission/memory
// overload (tight ServeOptions), and hard crashes. Each seeded schedule
// draws one point in that product space and asserts the standing
// invariants:
//
//   * crash schedules: recovery + suffix replay is bit-identical to an
//     uninterrupted single-threaded replay of the same trace;
//   * overload schedules: non-truncated completions match the
//     single-threaded fault-free reference exactly; truncated completions
//     are subsets with a diagnosed kPersistentFailure; unfinished sessions
//     carry a typed kOverloaded/kEvicted or injected Status — never a
//     generic error, never an abort;
//   * the service never over-admits (peak live sessions <= max_live).
//
// A schema-versioned JSON report of every schedule is written at the end
// (--report, default <dir>/chaos_report.json) so CI can archive the run.
//
// Usage:
//   boomer_chaos [--schedules N] [--sessions N] [--seed S]
//                [--dir DIR] [--report PATH] [--keep]
//
// Exit status 0 iff every schedule held every invariant.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/blender.h"
#include "core/preprocessor.h"
#include "graph/generators.h"
#include "gui/actions.h"
#include "serve/session_manager.h"
#include "serve/workload.h"
#include "util/atomic_file.h"
#include "util/fault.h"
#include "util/strings.h"

namespace {

using boomer::Status;
using boomer::StatusCode;
using boomer::core::Blender;
using boomer::core::PreprocessResult;
using boomer::graph::Graph;
using boomer::gui::ActionTrace;
using boomer::serve::ClientOptions;
using boomer::serve::ClientReport;
using boomer::serve::RecoveryOutcome;
using boomer::serve::ReplaySummary;
using boomer::serve::ServeOptions;
using boomer::serve::SessionId;
using boomer::serve::SessionManager;
using boomer::serve::SessionState;

struct Args {
  size_t schedules = 50;
  size_t sessions = 6;  // one session per AdversaryKind per schedule
  uint64_t seed = 211;
  std::string dir = "/tmp/boomer_chaos";
  std::string report;  // default: <dir>/chaos_report.json
  bool keep = false;
  // Internal child mode (crash schedules re-exec this binary).
  bool child = false;
  std::string child_dir;
  uint64_t child_seed = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--sessions N] [--seed S]\n"
               "          [--dir DIR] [--report PATH] [--keep]\n",
               argv0);
  std::exit(2);
}

using Canonical = std::set<std::vector<boomer::graph::VertexId>>;

Canonical Canonicalize(const std::vector<boomer::core::PartialMatch>& ms) {
  Canonical out;
  for (const auto& m : ms) out.insert(m.assignment);
  return out;
}

/// Parent and child derive the identical graph, preprocessing, and
/// adversarial traces from the schedule seed — the bit-identical crash
/// assertion depends on it.
struct Fixture {
  Graph graph;
  std::unique_ptr<PreprocessResult> prep;
  std::vector<ActionTrace> traces;
};

bool BuildFixture(size_t sessions, uint64_t seed, Fixture* out) {
  if (out->prep == nullptr) {
    // Four labels (vs crashtest's three) keep the hot-label and widened
    // max-template adversaries expensive but bounded on this graph.
    auto g_or = boomer::graph::GenerateErdosRenyi(60, 140, 4, 17);
    if (!g_or.ok()) return false;
    out->graph = std::move(g_or).value();
    boomer::core::PreprocessOptions prep_options;
    prep_options.t_avg_samples = 500;
    auto prep_or = boomer::core::Preprocess(out->graph, prep_options);
    if (!prep_or.ok()) return false;
    out->prep =
        std::make_unique<PreprocessResult>(std::move(prep_or).value());
  }
  // Cycles through every AdversaryKind: with the default 6 sessions each
  // schedule fields the full adversary roster.
  out->traces = boomer::serve::AdversarialTraces(out->graph, sessions, seed);
  return true;
}

ServeOptions ChildServeOptions(const std::string& dir) {
  ServeOptions options;
  options.num_workers = 2;
  options.max_live_sessions = 16;
  options.snapshot_dir = dir;
  options.wal_dir = dir;
  options.wal_group_commit = 2;
  return options;
}

/// Child mode: serve the adversarial workload until the armed crash trigger
/// SIGKILLs the process (or until completion, when the hit count lies
/// beyond the workload).
int RunChild(const Args& args) {
  Fixture f;
  if (!BuildFixture(args.sessions, args.child_seed, &f)) {
    std::fprintf(stderr, "child: fixture construction failed\n");
    return 3;
  }
  SessionManager manager(f.graph, *f.prep, ChildServeOptions(args.child_dir));
  // Sessions open sequentially before any action, so session id i+1 serves
  // trace i — the parent relies on this mapping during recovery.
  std::vector<SessionId> ids;
  for (size_t i = 0; i < f.traces.size(); ++i) {
    auto id_or = manager.OpenSession();
    if (!id_or.ok()) {
      std::fprintf(stderr, "child: open failed: %s\n",
                   id_or.status().ToString().c_str());
      return 3;
    }
    ids.push_back(*id_or);
  }
  // Round-robin submission interleaves every session's apply stream, so
  // the crash lands at a different multi-session cut each schedule.
  size_t longest = 0;
  for (const ActionTrace& t : f.traces) longest = std::max(longest, t.size());
  for (size_t step = 0; step < longest; ++step) {
    for (size_t i = 0; i < f.traces.size(); ++i) {
      if (step >= f.traces[i].size()) continue;
      for (;;) {
        Status s = manager.SubmitAction(ids[i], f.traces[i].at(step));
        if (s.ok()) break;
        if (s.code() != StatusCode::kOverloaded) {
          std::fprintf(stderr, "child: submit failed: %s\n",
                       s.ToString().c_str());
          return 3;
        }
        (void)manager.WaitIdle(ids[i]);
      }
    }
  }
  for (SessionId id : ids) {
    auto result_or = manager.Await(id);
    if (!result_or.ok() || result_or->state != SessionState::kCompleted) {
      std::fprintf(stderr, "child: session did not complete\n");
      return 3;
    }
  }
  return 0;
}

/// Re-executes this binary in child mode with the schedule's fault spec
/// armed. Returns the waitpid status, or -1 on spawn failure.
int SpawnChild(const char* self, const std::string& dir, size_t sessions,
               uint64_t seed, const std::string& fault_spec) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    ::setenv("BOOMER_FAULTS", fault_spec.c_str(), 1);
    const std::string sessions_text = std::to_string(sessions);
    const std::string seed_text = std::to_string(seed);
    ::execl(self, self, "--child", "--child-dir", dir.c_str(),
            "--child-sessions", sessions_text.c_str(), "--child-seed",
            seed_text.c_str(), static_cast<char*>(nullptr));
    std::fprintf(stderr, "exec %s failed: %s\n", self, std::strerror(errno));
    ::_exit(127);
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    std::fprintf(stderr, "waitpid failed: %s\n", std::strerror(errno));
    return -1;
  }
  return wstatus;
}

/// Crash-schedule verification: recover the child's directory, drive every
/// session to completion, and require results bit-identical to an
/// uninterrupted single-threaded replay. Returns failed assertions.
size_t RecoverAndVerify(const Fixture& f, const std::string& dir) {
  size_t failures = 0;
  SessionManager manager(f.graph, *f.prep, ChildServeOptions(dir));
  auto outcomes_or = manager.RecoverAll(dir);
  if (!outcomes_or.ok()) {
    std::fprintf(stderr, "  FAIL: recovery sweep: %s\n",
                 outcomes_or.status().ToString().c_str());
    return 1;
  }
  std::vector<const RecoveryOutcome*> by_trace(f.traces.size(), nullptr);
  for (const RecoveryOutcome& r : *outcomes_or) {
    if (r.original_id == 0 || r.original_id > f.traces.size()) {
      std::fprintf(stderr, "  FAIL: recovered unknown session %llu\n",
                   static_cast<unsigned long long>(r.original_id));
      ++failures;
      continue;
    }
    by_trace[r.original_id - 1] = &r;
  }
  for (size_t i = 0; i < f.traces.size(); ++i) {
    const ActionTrace& trace = f.traces[i];
    const RecoveryOutcome* outcome = by_trace[i];
    if (outcome != nullptr && !outcome->status.ok()) {
      // SIGKILL never corrupts already-written bytes: every log replays.
      std::fprintf(stderr, "  FAIL: trace %zu unreplayable: %s\n", i,
                   outcome->status.ToString().c_str());
      ++failures;
      continue;
    }
    SessionId id = 0;
    size_t start = 0;
    if (outcome != nullptr && outcome->new_id != 0) {
      id = outcome->new_id;
      start = outcome->actions_replayed;
    } else {
      auto id_or = manager.OpenSession();
      if (!id_or.ok()) {
        std::fprintf(stderr, "  FAIL: trace %zu reopen: %s\n", i,
                     id_or.status().ToString().c_str());
        ++failures;
        continue;
      }
      id = *id_or;
    }
    if (start > trace.size()) {
      std::fprintf(stderr,
                   "  FAIL: trace %zu replayed %zu of %zu actions — the "
                   "log holds more than was ever submitted\n",
                   i, start, trace.size());
      ++failures;
      continue;
    }
    Status st = Status::OK();
    for (size_t a = start; a < trace.size(); ++a) {
      st = manager.SubmitAction(id, trace.at(a));
      while (!st.ok() && st.code() == StatusCode::kOverloaded) {
        st = manager.WaitIdle(id);
        if (st.ok()) st = manager.SubmitAction(id, trace.at(a));
      }
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "  FAIL: trace %zu suffix submit: %s\n", i,
                   st.ToString().c_str());
      ++failures;
      continue;
    }
    auto result_or = manager.Await(id);
    if (!result_or.ok() || result_or->state != SessionState::kCompleted) {
      std::fprintf(stderr,
                   "  FAIL: trace %zu did not complete after recovery\n", i);
      ++failures;
      continue;
    }
    Blender reference(f.graph, *f.prep, ServeOptions().blender);
    Status ref_st = reference.RunTrace(trace);
    if (!ref_st.ok()) {
      std::fprintf(stderr, "  FAIL: trace %zu reference replay: %s\n", i,
                   ref_st.ToString().c_str());
      ++failures;
      continue;
    }
    if (Canonicalize(result_or->results) !=
        Canonicalize(reference.Results())) {
      std::fprintf(stderr,
                   "  FAIL: trace %zu results diverge from the "
                   "uninterrupted replay (%zu vs %zu matches)\n",
                   i, result_or->results.size(), reference.Results().size());
      ++failures;
    }
  }
  return failures;
}

/// The resource-exhaustion fault menu for overload schedules, rotated per
/// schedule. Every class the registry speaks appears: plain transients,
/// ENOSPC/EIO at the WAL append and snapshot-publish write boundaries, and
/// allocation failure at the CAP/drain growth points.
const char* kFaultMenu[] = {
    "",  // pure adversarial/overload, no faults
    "core/pvs=p0.08,core/pool_probe=p0.2",
    "wal/append/write=p0.04:enospc,wal/append/fsync=p0.03:eio",
    "io/atomic_write/write=p0.15:enospc,io/atomic_write/rename=p0.15:eio",
    "cap/add_pair=p0.002:alloc,core/drain_alloc=n2:alloc",
};
constexpr size_t kFaultMenuSize = sizeof(kFaultMenu) / sizeof(kFaultMenu[0]);

struct ReferenceRun {
  Canonical matches;
  size_t cap_bytes = 0;
};

struct ScheduleOutcome {
  size_t index = 0;
  std::string kind;  // "crash" | "overload"
  std::string fault_spec;
  std::string profile;  // "tight" | "generous" | "child"
  uint64_t seed = 0;
  size_t sessions = 0;
  size_t completed = 0;
  size_t truncated = 0;
  size_t failures = 0;
  bool child_crashed = false;
};

/// Overload-schedule verification, in-process: arm the fault spec, drive
/// every adversarial trace concurrently through a (possibly tight)
/// SessionManager, and hold the stress-suite invariants.
ScheduleOutcome RunOverloadSchedule(Fixture* f, size_t index, uint64_t seed,
                                    size_t sessions,
                                    const std::string& fault_spec,
                                    bool tight, const std::string& dir) {
  ScheduleOutcome out;
  out.index = index;
  out.kind = "overload";
  out.fault_spec = fault_spec;
  out.profile = tight ? "tight" : "generous";
  out.seed = seed;
  out.sessions = sessions;
  if (!BuildFixture(sessions, seed, f)) {
    std::fprintf(stderr, "schedule %zu: fixture construction failed\n",
                 index);
    out.failures = 1;
    return out;
  }

  ServeOptions options;
  options.num_workers = 4;
  options.snapshot_dir = dir;
  options.wal_dir = dir;  // WAL on: the append boundary must exist to fault
  options.wal_group_commit = 2;
  if (tight) {
    options.max_live_sessions = 3;  // under the client count: sheds
    options.max_queued_actions = 4;
  } else {
    options.max_live_sessions = 8;
    options.max_queued_actions = 16;
  }

  // References first, fault-free — they are the ground truth and the
  // calibration for the tight profile's memory budget.
  std::vector<ReferenceRun> refs;
  refs.reserve(f->traces.size());
  size_t max_cap = 0;
  for (const ActionTrace& trace : f->traces) {
    Blender blender(f->graph, *f->prep, options.blender);
    Status st = blender.RunTrace(trace);
    if (!st.ok()) {
      std::fprintf(stderr, "schedule %zu: reference replay: %s\n", index,
                   st.ToString().c_str());
      out.failures = 1;
      return out;
    }
    ReferenceRun ref;
    ref.matches = Canonicalize(blender.Results());
    ref.cap_bytes = blender.cap().ComputeStats().size_bytes;
    max_cap = std::max(max_cap, ref.cap_bytes);
    refs.push_back(std::move(ref));
  }
  if (tight && max_cap > 0) {
    // Two grown sessions fit, three do not: eviction churn is guaranteed.
    options.memory_budget_bytes = 2 * max_cap + max_cap / 2;
  }

  std::string spec = fault_spec;
  if (!spec.empty()) {
    spec += ",seed=" + std::to_string(seed);
    Status st = boomer::fault::Configure(spec);
    if (!st.ok()) {
      std::fprintf(stderr, "schedule %zu: bad fault spec: %s\n", index,
                   st.ToString().c_str());
      out.failures = 1;
      return out;
    }
  }

  ClientOptions client_options;
  client_options.client_threads = 8;
  client_options.max_resumes = 32;
  client_options.jitter_seed = seed;

  ReplaySummary summary;
  {
    SessionManager manager(f->graph, *f->prep, options);
    summary = boomer::serve::ReplayConcurrently(&manager, f->traces,
                                                client_options);
  }
  boomer::fault::Reset();

  for (size_t i = 0; i < summary.clients.size(); ++i) {
    const ClientReport& c = summary.clients[i];
    const ReferenceRun& ref = refs[i];
    if (!c.completed) {
      // Unfinished sessions must have been refused in a *typed* way: the
      // overload protocol's codes, or the injected resource-exhaustion
      // fault itself (ENOSPC/EIO failing the WAL, alloc refusing growth).
      const StatusCode code = c.final_status.code();
      const bool typed = code == StatusCode::kOverloaded ||
                         code == StatusCode::kEvicted ||
                         boomer::fault::IsInjected(c.final_status);
      if (c.final_status.ok() || !typed) {
        std::fprintf(stderr,
                     "  FAIL: schedule %zu trace %zu unfinished with "
                     "untyped status: %s\n",
                     index, i, c.final_status.ToString().c_str());
        ++out.failures;
      }
      continue;
    }
    ++out.completed;
    const Canonical got = Canonicalize(c.results);
    if (!c.report.truncated()) {
      if (got != ref.matches) {
        std::fprintf(stderr,
                     "  FAIL: schedule %zu trace %zu diverged from the "
                     "fault-free replay (%zu vs %zu matches)\n",
                     index, i, got.size(), ref.matches.size());
        ++out.failures;
      }
    } else {
      ++out.truncated;
      // No SRT budget and no watchdog here: the only legal diagnosis is a
      // persistent processing failure, and the partial answer must be a
      // subset of the reference — degraded, never wrong.
      if (c.report.truncation !=
          boomer::core::TruncationReason::kPersistentFailure) {
        std::fprintf(stderr,
                     "  FAIL: schedule %zu trace %zu truncated with "
                     "unexpected reason %s\n",
                     index, i,
                     boomer::core::TruncationReasonName(c.report.truncation));
        ++out.failures;
      }
      if (!std::includes(ref.matches.begin(), ref.matches.end(), got.begin(),
                         got.end())) {
        std::fprintf(stderr,
                     "  FAIL: schedule %zu trace %zu truncated session "
                     "produced an unsound match\n",
                     index, i);
        ++out.failures;
      }
    }
  }
  if (summary.stats.peak_live_sessions > options.max_live_sessions) {
    std::fprintf(stderr,
                 "  FAIL: schedule %zu over-admitted: peak %zu live > "
                 "max %zu\n",
                 index, summary.stats.peak_live_sessions,
                 options.max_live_sessions);
    ++out.failures;
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

std::string RenderReport(const std::vector<ScheduleOutcome>& outcomes,
                         size_t total_failures) {
  std::string json = "{\n  \"schema_version\": 1,\n"
                     "  \"tool\": \"boomer_chaos\",\n";
  json += boomer::StrFormat("  \"schedules\": %zu,\n", outcomes.size());
  json += boomer::StrFormat("  \"failures\": %zu,\n", total_failures);
  json += "  \"results\": [\n";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const ScheduleOutcome& o = outcomes[i];
    json += boomer::StrFormat(
        "    {\"index\": %zu, \"kind\": \"%s\", \"profile\": \"%s\", "
        "\"fault_spec\": \"%s\", \"seed\": %llu, \"sessions\": %zu, "
        "\"completed\": %zu, \"truncated\": %zu, \"child_crashed\": %s, "
        "\"failures\": %zu}%s\n",
        o.index, o.kind.c_str(), o.profile.c_str(),
        JsonEscape(o.fault_spec).c_str(),
        static_cast<unsigned long long>(o.seed), o.sessions, o.completed,
        o.truncated, o.child_crashed ? "true" : "false", o.failures,
        i + 1 < outcomes.size() ? "," : "");
  }
  json += "  ]\n}\n";
  return json;
}

void RemoveDirRecursive(const std::string& dir) {
  auto names_or = boomer::ListDirectory(dir);
  if (names_or.ok()) {
    for (const std::string& name : *names_or) {
      (void)boomer::RemoveFileIfExists(dir + "/" + name);
    }
  }
  (void)::rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    auto parse_size = [&](size_t* out) {
      auto v = boomer::ParseInt64(next());
      if (!v.ok() || *v < 0) Usage(argv[0]);
      *out = static_cast<size_t>(*v);
    };
    if (flag == "--schedules") {
      parse_size(&args.schedules);
    } else if (flag == "--sessions") {
      parse_size(&args.sessions);
    } else if (flag == "--seed") {
      size_t s = 0;
      parse_size(&s);
      args.seed = s;
    } else if (flag == "--dir") {
      args.dir = next();
    } else if (flag == "--report") {
      args.report = next();
    } else if (flag == "--keep") {
      args.keep = true;
    } else if (flag == "--child") {
      args.child = true;
    } else if (flag == "--child-dir") {
      args.child_dir = next();
    } else if (flag == "--child-sessions") {
      parse_size(&args.sessions);
    } else if (flag == "--child-seed") {
      size_t s = 0;
      parse_size(&s);
      args.child_seed = s;
    } else {
      Usage(argv[0]);
    }
  }
  if (args.child) return RunChild(args);
  if (args.report.empty()) args.report = args.dir + "/chaos_report.json";

  if (::mkdir(args.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "mkdir %s failed: %s\n", args.dir.c_str(),
                 std::strerror(errno));
    return 1;
  }

  // Crash sites for the every-third crash schedule; the hit-count sweep
  // lands cuts early, mid, and beyond the workload.
  const char* kCrashSites[] = {"wal/append/write", "wal/append/fsync"};
  Fixture fixture;
  std::vector<ScheduleOutcome> outcomes;
  outcomes.reserve(args.schedules);
  size_t total_failures = 0;
  size_t crashed = 0;
  size_t crash_schedules = 0;
  for (size_t k = 0; k < args.schedules; ++k) {
    const uint64_t seed = args.seed + k;
    const std::string dir = args.dir + "/schedule-" + std::to_string(k);
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "mkdir %s failed: %s\n", dir.c_str(),
                   std::strerror(errno));
      return 1;
    }

    ScheduleOutcome out;
    if (k % 3 == 2) {
      // Crash schedule: adversarial traces served by a forked child that
      // SIGKILLs itself at the armed WAL site; then recover + verify.
      ++crash_schedules;
      out.index = k;
      out.kind = "crash";
      out.profile = "child";
      out.seed = seed;
      out.sessions = args.sessions;
      const char* site = kCrashSites[(k / 3) % 2];
      const uint64_t nth = 1 + (k * 5) % 37;
      out.fault_spec = std::string(site) + "=c" + std::to_string(nth);
      if (!BuildFixture(args.sessions, seed, &fixture)) {
        std::fprintf(stderr, "schedule %zu: fixture construction failed\n",
                     k);
        out.failures = 1;
      } else {
        const int wstatus = SpawnChild(argv[0], dir, args.sessions, seed,
                                       out.fault_spec);
        if (wstatus < 0) return 1;
        bool ok_exit = false;
        if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
          out.child_crashed = true;
          ++crashed;
          ok_exit = true;
        } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
          ok_exit = true;  // hit count beyond the workload; recover anyway
        }
        if (!ok_exit) {
          std::fprintf(stderr,
                       "schedule %zu (%s): child died unexpectedly "
                       "(wstatus 0x%x)\n",
                       k, out.fault_spec.c_str(), wstatus);
          ++out.failures;
        } else {
          const size_t failures = RecoverAndVerify(fixture, dir);
          out.failures += failures;
          out.completed = failures == 0 ? args.sessions : 0;
        }
      }
    } else {
      const std::string fault_spec = kFaultMenu[k % kFaultMenuSize];
      const bool tight = (k / kFaultMenuSize) % 2 == 1 || k % 3 == 1;
      out = RunOverloadSchedule(&fixture, k, seed, args.sessions, fault_spec,
                                tight, dir);
    }
    if (out.failures > 0) {
      std::fprintf(stderr, "schedule %zu (%s, %s, seed %llu): %zu "
                   "failure(s)\n",
                   k, out.kind.c_str(),
                   out.fault_spec.empty() ? "no faults"
                                          : out.fault_spec.c_str(),
                   static_cast<unsigned long long>(seed), out.failures);
      total_failures += out.failures;
    }
    outcomes.push_back(std::move(out));
    if (!args.keep) RemoveDirRecursive(dir);
  }

  const std::string report = RenderReport(outcomes, total_failures);
  Status report_st = boomer::WriteFileAtomic(args.report, report,
                                             boomer::FileKind::kText);
  if (!report_st.ok()) {
    std::fprintf(stderr, "report write failed: %s\n",
                 report_st.ToString().c_str());
    total_failures += 1;
  }
  // The schedule directories are already gone (unless --keep); the work
  // directory stays behind to carry the report for CI artifact upload.

  std::printf(
      "%zu schedule(s): %zu crash (%zu SIGKILLed), %zu overload, "
      "%zu failure(s); report: %s\n",
      args.schedules, crash_schedules, crashed,
      args.schedules - crash_schedules, total_failures,
      args.report.c_str());
  return total_failures == 0 ? 0 : 1;
}
