// boomer_crashtest: fork/exec SIGKILL-recovery harness for the serving
// runtime's crash-durability contract (DESIGN.md §5d).
//
// Each *schedule* runs one child process (this same binary, re-executed
// with --child) that serves a seeded multi-session workload with the WAL
// enabled and a `site=cN` crash trigger armed: on the Nth hit of the
// chosen fault site the child raises SIGKILL against itself — no unwind,
// no flush, the userspace equivalent of yanking the power cord. The parent
// waits for the corpse, runs SessionManager::RecoverAll over the child's
// WAL directory, re-submits each session's remaining action suffix, and
// asserts the final Run results are bit-identical to an uninterrupted
// single-threaded replay of the same trace.
//
// Usage:
//   boomer_crashtest [--schedules N] [--sessions N] [--seed S]
//                    [--dir DIR] [--keep]
//
// Exit status 0 iff every schedule recovered bit-identically. The default
// 50 schedules sweep both WAL fault sites (append and fsync) across crash
// hit counts and workload seeds.

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/blender.h"
#include "core/preprocessor.h"
#include "graph/generators.h"
#include "gui/actions.h"
#include "serve/session_manager.h"
#include "serve/workload.h"
#include "util/atomic_file.h"
#include "util/strings.h"

namespace {

using boomer::Status;
using boomer::StatusCode;
using boomer::core::Blender;
using boomer::core::PreprocessResult;
using boomer::graph::Graph;
using boomer::gui::ActionTrace;
using boomer::serve::RecoveryOutcome;
using boomer::serve::ServeOptions;
using boomer::serve::SessionId;
using boomer::serve::SessionManager;
using boomer::serve::SessionResult;
using boomer::serve::SessionState;

struct Args {
  size_t schedules = 50;
  size_t sessions = 4;
  uint64_t seed = 101;
  std::string dir = "/tmp/boomer_crashtest";
  bool keep = false;
  // Internal child mode.
  bool child = false;
  std::string child_dir;
  uint64_t child_seed = 0;
};

[[noreturn]] void Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--schedules N] [--sessions N] [--seed S]\n"
               "          [--dir DIR] [--keep]\n",
               argv0);
  std::exit(2);
}

/// Order-insensitive canonical form of a result set, mirroring the test
/// support library's Canonicalize (tools do not link tests/support).
using Canonical = std::set<std::vector<boomer::graph::VertexId>>;

Canonical Canonicalize(const std::vector<boomer::core::PartialMatch>& ms) {
  Canonical out;
  for (const auto& m : ms) out.insert(m.assignment);
  return out;
}

/// The shared workload fixture: parent and child must derive the identical
/// graph, preprocessing, and traces from the schedule seed, or the
/// bit-identical assertion would be comparing different queries.
struct Fixture {
  Graph graph;
  std::unique_ptr<PreprocessResult> prep;
  std::vector<ActionTrace> traces;
};

bool BuildFixture(size_t sessions, uint64_t seed, Fixture* out) {
  if (out->prep == nullptr) {
    // The graph and its preprocessing are seed-independent; only the
    // traces vary per schedule. Reuse across schedules (the parent calls
    // this 50 times).
    auto g_or = boomer::graph::GenerateErdosRenyi(60, 140, 3, 17);
    if (!g_or.ok()) return false;
    out->graph = std::move(g_or).value();
    boomer::core::PreprocessOptions prep_options;
    prep_options.t_avg_samples = 500;
    auto prep_or = boomer::core::Preprocess(out->graph, prep_options);
    if (!prep_or.ok()) return false;
    out->prep =
        std::make_unique<PreprocessResult>(std::move(prep_or).value());
  }
  out->traces = boomer::serve::SeededTraces(out->graph, sessions, seed);
  return true;
}

ServeOptions ChildServeOptions(const std::string& dir) {
  ServeOptions options;
  options.num_workers = 2;
  options.max_live_sessions = 16;
  options.snapshot_dir = dir;
  options.wal_dir = dir;
  // Small group-commit interval so fsync-site schedules get frequent hits
  // while write-site schedules still exercise the unsynced-tail window.
  options.wal_group_commit = 2;
  return options;
}

/// Child mode: serve the seeded workload until done (or until the armed
/// crash trigger kills the process mid-flight, which is the point).
int RunChild(const Args& args) {
  Fixture f;
  if (!BuildFixture(args.sessions, args.child_seed, &f)) {
    std::fprintf(stderr, "child: fixture construction failed\n");
    return 3;
  }
  SessionManager manager(f.graph, *f.prep, ChildServeOptions(args.child_dir));

  // Sessions open sequentially before any action, so session id i+1 always
  // serves trace i — the parent relies on this mapping to know which suffix
  // belongs to which recovered session.
  std::vector<SessionId> ids;
  for (size_t i = 0; i < f.traces.size(); ++i) {
    auto id_or = manager.OpenSession();
    if (!id_or.ok()) {
      std::fprintf(stderr, "child: open failed: %s\n",
                   id_or.status().ToString().c_str());
      return 3;
    }
    ids.push_back(*id_or);
  }
  // Round-robin submission interleaves every session's apply stream, so a
  // single crash trigger lands at a different multi-session cut each
  // schedule.
  size_t longest = 0;
  for (const ActionTrace& t : f.traces) longest = std::max(longest, t.size());
  for (size_t step = 0; step < longest; ++step) {
    for (size_t i = 0; i < f.traces.size(); ++i) {
      if (step >= f.traces[i].size()) continue;
      for (;;) {
        Status s = manager.SubmitAction(ids[i], f.traces[i].at(step));
        if (s.ok()) break;
        if (s.code() != StatusCode::kOverloaded) {
          std::fprintf(stderr, "child: submit failed: %s\n",
                       s.ToString().c_str());
          return 3;
        }
        (void)manager.WaitIdle(ids[i]);
      }
    }
  }
  for (SessionId id : ids) {
    auto result_or = manager.Await(id);
    if (!result_or.ok() || result_or->state != SessionState::kCompleted) {
      std::fprintf(stderr, "child: session did not complete\n");
      return 3;
    }
  }
  // Survived: the armed hit count was beyond this workload. The parent
  // treats a clean exit as "recover whatever the WALs hold" all the same.
  return 0;
}

/// Re-executes this binary in child mode with a crash schedule armed.
/// Returns the child's wait status via waitpid, or -1 on spawn failure.
int SpawnChild(const char* self, const std::string& dir, size_t sessions,
               uint64_t seed, const std::string& fault_spec) {
  const pid_t pid = ::fork();
  if (pid < 0) {
    std::fprintf(stderr, "fork failed: %s\n", std::strerror(errno));
    return -1;
  }
  if (pid == 0) {
    ::setenv("BOOMER_FAULTS", fault_spec.c_str(), 1);
    const std::string sessions_text = std::to_string(sessions);
    const std::string seed_text = std::to_string(seed);
    ::execl(self, self, "--child", "--child-dir", dir.c_str(),
            "--child-sessions", sessions_text.c_str(), "--child-seed",
            seed_text.c_str(), static_cast<char*>(nullptr));
    // Only reached when exec itself failed; _exit avoids running the
    // parent's atexit/static-destructor state in the forked image.
    std::fprintf(stderr, "exec %s failed: %s\n", self, std::strerror(errno));
    ::_exit(127);
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) < 0) {
    std::fprintf(stderr, "waitpid failed: %s\n", std::strerror(errno));
    return -1;
  }
  return wstatus;
}

/// Recovers the child's directory and drives every session to completion,
/// comparing against the uninterrupted reference. Returns the number of
/// failed assertions (0 = schedule passed).
size_t RecoverAndVerify(const Fixture& f, const std::string& dir) {
  size_t failures = 0;
  SessionManager manager(f.graph, *f.prep, ChildServeOptions(dir));
  auto outcomes_or = manager.RecoverAll(dir);
  if (!outcomes_or.ok()) {
    std::fprintf(stderr, "  FAIL: recovery sweep: %s\n",
                 outcomes_or.status().ToString().c_str());
    return 1;
  }
  // Child session ids are 1-based and sequential (see RunChild).
  std::vector<const RecoveryOutcome*> by_trace(f.traces.size(), nullptr);
  for (const RecoveryOutcome& r : *outcomes_or) {
    if (r.original_id == 0 || r.original_id > f.traces.size()) {
      std::fprintf(stderr, "  FAIL: recovered unknown session %llu\n",
                   static_cast<unsigned long long>(r.original_id));
      ++failures;
      continue;
    }
    by_trace[r.original_id - 1] = &r;
  }
  for (size_t i = 0; i < f.traces.size(); ++i) {
    const ActionTrace& trace = f.traces[i];
    const RecoveryOutcome* outcome = by_trace[i];
    if (outcome != nullptr && !outcome->status.ok()) {
      // SIGKILL never corrupts already-written bytes, so every log must
      // replay; a quarantine here means the WAL or reader is broken.
      std::fprintf(stderr, "  FAIL: trace %zu unreplayable: %s\n", i,
                   outcome->status.ToString().c_str());
      ++failures;
      continue;
    }
    SessionId id = 0;
    size_t start = 0;
    if (outcome != nullptr && outcome->new_id != 0) {
      id = outcome->new_id;
      start = outcome->actions_replayed;
    } else {
      // Nothing recoverable logged (crash before the first append): the
      // session restarts from scratch.
      auto id_or = manager.OpenSession();
      if (!id_or.ok()) {
        std::fprintf(stderr, "  FAIL: trace %zu reopen: %s\n", i,
                     id_or.status().ToString().c_str());
        ++failures;
        continue;
      }
      id = *id_or;
    }
    if (start > trace.size()) {
      std::fprintf(stderr,
                   "  FAIL: trace %zu replayed %zu of %zu actions — the "
                   "log holds more than was ever submitted\n",
                   i, start, trace.size());
      ++failures;
      continue;
    }
    Status st = Status::OK();
    for (size_t a = start; a < trace.size(); ++a) {
      st = manager.SubmitAction(id, trace.at(a));
      while (!st.ok() && st.code() == StatusCode::kOverloaded) {
        st = manager.WaitIdle(id);
        if (st.ok()) st = manager.SubmitAction(id, trace.at(a));
      }
      if (!st.ok()) break;
    }
    if (!st.ok()) {
      std::fprintf(stderr, "  FAIL: trace %zu suffix submit: %s\n", i,
                   st.ToString().c_str());
      ++failures;
      continue;
    }
    auto result_or = manager.Await(id);
    if (!result_or.ok() ||
        result_or->state != SessionState::kCompleted) {
      std::fprintf(stderr, "  FAIL: trace %zu did not complete after "
                   "recovery\n", i);
      ++failures;
      continue;
    }
    // The reference: the same trace, uninterrupted, single-threaded.
    Blender reference(f.graph, *f.prep, ServeOptions().blender);
    Status ref_st = reference.RunTrace(trace);
    if (!ref_st.ok()) {
      std::fprintf(stderr, "  FAIL: trace %zu reference replay: %s\n", i,
                   ref_st.ToString().c_str());
      ++failures;
      continue;
    }
    if (Canonicalize(result_or->results) !=
        Canonicalize(reference.Results())) {
      std::fprintf(stderr,
                   "  FAIL: trace %zu results diverge from the "
                   "uninterrupted replay (%zu vs %zu matches)\n",
                   i, result_or->results.size(),
                   reference.Results().size());
      ++failures;
    }
  }
  return failures;
}

void RemoveDirRecursive(const std::string& dir) {
  auto names_or = boomer::ListDirectory(dir);
  if (names_or.ok()) {
    for (const std::string& name : *names_or) {
      (void)boomer::RemoveFileIfExists(dir + "/" + name);
    }
  }
  (void)::rmdir(dir.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) Usage(argv[0]);
      return argv[++i];
    };
    auto parse_size = [&](size_t* out) {
      auto v = boomer::ParseInt64(next());
      if (!v.ok() || *v < 0) Usage(argv[0]);
      *out = static_cast<size_t>(*v);
    };
    if (flag == "--schedules") {
      parse_size(&args.schedules);
    } else if (flag == "--sessions") {
      parse_size(&args.sessions);
    } else if (flag == "--seed") {
      size_t s = 0;
      parse_size(&s);
      args.seed = s;
    } else if (flag == "--dir") {
      args.dir = next();
    } else if (flag == "--keep") {
      args.keep = true;
    } else if (flag == "--child") {
      args.child = true;
    } else if (flag == "--child-dir") {
      args.child_dir = next();
    } else if (flag == "--child-sessions") {
      parse_size(&args.sessions);
    } else if (flag == "--child-seed") {
      size_t s = 0;
      parse_size(&s);
      args.child_seed = s;
    } else {
      Usage(argv[0]);
    }
  }
  if (args.child) return RunChild(args);

  if (::mkdir(args.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "mkdir %s failed: %s\n", args.dir.c_str(),
                 std::strerror(errno));
    return 1;
  }

  // Crash sites: the WAL's write path fires once per action (crash lands
  // *before* a record hits the log — the action must replay from the
  // suffix), the fsync path once per group commit (crash lands with an
  // unsynced tail in the page cache). Alternating them with a sweep of hit
  // counts and workload seeds covers early, mid, and post-workload cuts.
  const char* kSites[] = {"wal/append/write", "wal/append/fsync"};
  Fixture fixture;
  size_t total_failures = 0;
  size_t crashed = 0;
  size_t survived = 0;
  for (size_t k = 0; k < args.schedules; ++k) {
    const char* site = kSites[k % 2];
    const uint64_t nth = 1 + (k * 7) % 41;
    const uint64_t seed = args.seed + k / 4;
    const std::string dir =
        args.dir + "/schedule-" + std::to_string(k);
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "mkdir %s failed: %s\n", dir.c_str(),
                   std::strerror(errno));
      return 1;
    }
    const std::string fault_spec =
        std::string(site) + "=c" + std::to_string(nth);

    if (!BuildFixture(args.sessions, seed, &fixture)) {
      std::fprintf(stderr, "fixture construction failed\n");
      return 1;
    }
    const int wstatus =
        SpawnChild(argv[0], dir, args.sessions, seed, fault_spec);
    if (wstatus < 0) return 1;
    bool ok_exit = false;
    if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
      ++crashed;
      ok_exit = true;
    } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0) {
      ++survived;  // hit count beyond the workload; still recover below
      ok_exit = true;
    }
    if (!ok_exit) {
      std::fprintf(stderr,
                   "schedule %zu (%s): child died unexpectedly "
                   "(wstatus 0x%x)\n",
                   k, fault_spec.c_str(), wstatus);
      ++total_failures;
      continue;
    }

    const size_t failures = RecoverAndVerify(fixture, dir);
    if (failures > 0) {
      std::fprintf(stderr, "schedule %zu (%s, seed %llu): %zu failure(s)\n",
                   k, fault_spec.c_str(),
                   static_cast<unsigned long long>(seed), failures);
      total_failures += failures;
    }
    if (!args.keep) RemoveDirRecursive(dir);
  }
  if (!args.keep && total_failures == 0) RemoveDirRecursive(args.dir);

  std::printf(
      "%zu schedule(s): %zu crashed+recovered, %zu survived, "
      "%zu failure(s)\n",
      args.schedules, crashed, survived, total_failures);
  return total_failures == 0 ? 0 : 1;
}
