// Unified benchmark driver: wraps the Exp-* workloads behind subcommands
// and emits machine-readable, schema-versioned BENCH_<name>.json results
// that tools/ci/bench_compare.py can diff across commits.
//
//   boomer_bench <subcommand> [driver flags] [common bench flags]
//
// Subcommands:
//   exp3_srt       SRT per strategy with per-phase decomposition
//                  (backlog / drain / enumeration / formulation-blended)
//   exp3_cap_time  CAP construction wall time per strategy
//   exp3_cap_size  CAP size (bytes, adjacency pairs) per strategy
//   micro_pml      PML distance / within-distance lookup latency
//   list           print the subcommand table
//
// Driver flags (stripped before the common bench flags are parsed):
//   --smoke          tiny preset (wordnet @ scale 0.01, Q1/Q2, 3 iters)
//   --iterations=N   timed iterations (default 5)
//   --warmup=N       untimed warmup iterations (default 1)
//   --out=DIR        output directory for BENCH_<name>.json (default ".")
//
// Protocol: run --warmup untimed iterations (dataset + PML caches get hot),
// reset the obs metrics registry, then run --iterations timed iterations
// with per-iteration derived seeds. Every per-run sample lands in a named
// series; the JSON stores p50/p95/p99/mean/n per series plus the full
// boomer::obs metrics snapshot and environment metadata (git sha, build
// type, dataset, seed) so two result files are comparable or provably not.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "bench_util/dataset_registry.h"
#include "bench_util/experiment.h"
#include "bench_util/flags.h"
#include "graph/datasets.h"
#include "obs/metrics.h"
#include "pml/pml_index.h"
#include "query/templates.h"
#include "util/atomic_file.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/timer.h"

// Build metadata injected by tools/CMakeLists.txt; fall back gracefully so
// the file also compiles standalone.
#ifndef BOOMER_GIT_SHA
#define BOOMER_GIT_SHA "unknown"
#endif
#ifndef BOOMER_BUILD_TYPE
#define BOOMER_BUILD_TYPE "unknown"
#endif
#ifndef BOOMER_SANITIZE_FLAGS
#define BOOMER_SANITIZE_FLAGS ""
#endif

namespace boomer {
namespace bench {
namespace {

constexpr int kSchemaVersion = 1;

constexpr char kUsage[] =
    "usage: boomer_bench <subcommand> [--smoke] [--iterations=N]\n"
    "                    [--warmup=N] [--out=DIR] [common bench flags]\n"
    "subcommands:\n"
    "  exp3_srt       SRT + per-phase decomposition per strategy\n"
    "  exp3_cap_time  CAP construction time per strategy\n"
    "  exp3_cap_size  CAP index size per strategy\n"
    "  micro_pml      PML lookup latency microbenchmark\n"
    "  list           print this table\n"
    "common flags: --scale= --seed= --datasets= --queries= --instances=\n"
    "              --cache-dir= --max-results= --latency-scale=\n";

struct DriverFlags {
  bool smoke = false;
  int iterations = 5;
  int warmup = 1;
  std::string out = ".";
};

/// One per-run sample sink: series name -> samples, insertion-ordered not
/// required (JSON object keys are sorted by std::map for determinism).
using SeriesMap = std::map<std::string, std::vector<double>>;

struct IterationRecord {
  int iter = 0;
  uint64_t seed = 0;
  double wall_seconds = 0.0;
};

/// Interpolated percentile of an unsorted sample; q in [0, 1].
double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

const char* StrategySuffix(core::Strategy s) {
  switch (s) {
    case core::Strategy::kImmediate:
      return "IC";
    case core::Strategy::kDeferToRun:
      return "DR";
    case core::Strategy::kDeferToIdle:
      return "DI";
  }
  return "??";
}

enum class GridMode { kSrt, kCapTime, kCapSize };

/// One pass over the Exp-3 grid (datasets x templates x instances x
/// strategies). Samples land in `series` keyed by metric + strategy; pass
/// nullptr during warmup.
Status RunExp3Iteration(const CommonFlags& flags, DatasetRegistry* registry,
                        GridMode mode, uint64_t instance_seed,
                        SeriesMap* series) {
  auto datasets = flags.datasets;
  if (datasets.empty()) {
    datasets = {graph::DatasetKind::kWordNet, graph::DatasetKind::kDblp,
                graph::DatasetKind::kFlickr};
  }
  auto queries = flags.queries;
  if (queries.empty()) {
    queries.assign(std::begin(query::kAllTemplates),
                   std::end(query::kAllTemplates));
  }
  for (graph::DatasetKind kind : datasets) {
    graph::DatasetSpec spec{kind, flags.scale, flags.seed};
    BOOMER_ASSIGN_OR_RETURN(LoadedDataset dataset, registry->Get(spec));
    for (query::TemplateId tmpl : queries) {
      auto overrides = Exp3Overrides(kind, tmpl);
      auto instances_or = MakeInstances(dataset, tmpl, flags.instances,
                                        instance_seed, overrides);
      if (!instances_or.ok()) {
        std::fprintf(stderr, "skip %s/%s: %s\n", graph::DatasetKindName(kind),
                     query::TemplateName(tmpl),
                     instances_or.status().ToString().c_str());
        continue;
      }
      for (const query::BphQuery& q : *instances_or) {
        for (core::Strategy strategy :
             {core::Strategy::kImmediate, core::Strategy::kDeferToRun,
              core::Strategy::kDeferToIdle}) {
          BlendRunSpec run;
          run.strategy = strategy;
          run.max_results = flags.max_results;
          run.latency_factor = flags.LatencyFactor();
          run.latency_seed = instance_seed + 7;
          BOOMER_ASSIGN_OR_RETURN(BlendRunResult result,
                                  RunBlend(dataset, q, run));
          if (series == nullptr) continue;
          const core::BlendReport& r = result.report;
          const std::string sfx = StrategySuffix(strategy);
          switch (mode) {
            case GridMode::kSrt:
              (*series)["srt_seconds_" + sfx].push_back(r.srt_seconds);
              (*series)["srt_backlog_seconds_" + sfx].push_back(
                  r.run_backlog_seconds);
              (*series)["srt_drain_seconds_" + sfx].push_back(
                  r.run_drain_wall_seconds);
              (*series)["srt_enum_seconds_" + sfx].push_back(
                  r.enumeration_wall_seconds);
              (*series)["formulation_blend_seconds_" + sfx].push_back(
                  r.FormulationBlendSeconds());
              (*series)["cap_build_seconds_" + sfx].push_back(
                  r.cap_build_wall_seconds);
              break;
            case GridMode::kCapTime:
              (*series)["cap_build_seconds_" + sfx].push_back(
                  r.cap_build_wall_seconds);
              break;
            case GridMode::kCapSize:
              (*series)["cap_bytes_" + sfx].push_back(
                  static_cast<double>(r.cap_stats.size_bytes));
              (*series)["cap_pairs_" + sfx].push_back(
                  static_cast<double>(r.cap_stats.num_adjacency_pairs));
              break;
          }
        }
      }
    }
  }
  return Status::OK();
}

/// PML lookup latency: timed batches of random Distance / WithinDistance
/// probes; each sample is the mean per-lookup latency of one batch.
Status RunPmlIteration(const CommonFlags& flags, DatasetRegistry* registry,
                       bool smoke, uint64_t iter_seed, SeriesMap* series) {
  graph::DatasetKind kind = flags.datasets.empty()
                                ? graph::DatasetKind::kWordNet
                                : flags.datasets.front();
  graph::DatasetSpec spec{kind, flags.scale, flags.seed};
  BOOMER_ASSIGN_OR_RETURN(LoadedDataset dataset, registry->Get(spec));
  const pml::PmlIndex& pml = dataset.prep->pml();
  const auto n = static_cast<uint64_t>(dataset.graph->NumVertices());
  if (n == 0) return Status::InvalidArgument("micro_pml: empty graph");
  const int batches = smoke ? 20 : 200;
  constexpr int kLookupsPerBatch = 256;
  std::mt19937_64 rng(iter_seed);
  uint64_t checksum = 0;  // defeats dead-code elimination of the lookups
  for (int b = 0; b < batches; ++b) {
    WallTimer timer;
    for (int i = 0; i < kLookupsPerBatch; ++i) {
      checksum += pml.Distance(static_cast<graph::VertexId>(rng() % n),
                               static_cast<graph::VertexId>(rng() % n));
    }
    const double dist_us =
        static_cast<double>(timer.ElapsedMicros()) / kLookupsPerBatch;
    timer.Restart();
    for (int i = 0; i < kLookupsPerBatch; ++i) {
      checksum += pml.WithinDistance(static_cast<graph::VertexId>(rng() % n),
                                     static_cast<graph::VertexId>(rng() % n),
                                     static_cast<uint32_t>(1 + rng() % 6))
                      ? 1
                      : 0;
    }
    const double within_us =
        static_cast<double>(timer.ElapsedMicros()) / kLookupsPerBatch;
    if (series != nullptr) {
      (*series)["pml_distance_us"].push_back(dist_us);
      (*series)["pml_within_us"].push_back(within_us);
    }
  }
  if (checksum == 0xdeadbeef) std::fprintf(stderr, "checksum sentinel\n");
  return Status::OK();
}

std::string DatasetsMetaString(const CommonFlags& flags) {
  if (flags.datasets.empty()) return "wordnet,dblp,flickr";
  std::string out;
  for (graph::DatasetKind kind : flags.datasets) {
    if (!out.empty()) out += ",";
    out += graph::DatasetKindName(kind);
  }
  return out;
}

std::string BuildJson(const std::string& bench_name,
                      const DriverFlags& driver, const CommonFlags& flags,
                      const std::vector<IterationRecord>& iterations,
                      const SeriesMap& series) {
  std::string j = "{\n";
  j += StrFormat("  \"schema_version\": %d,\n", kSchemaVersion);
  j += StrFormat("  \"bench\": \"%s\",\n",
                 obs::JsonEscape(bench_name).c_str());
  j += "  \"meta\": {\n";
  j += StrFormat("    \"git_sha\": \"%s\",\n",
                 obs::JsonEscape(BOOMER_GIT_SHA).c_str());
  j += StrFormat("    \"build_type\": \"%s\",\n",
                 obs::JsonEscape(BOOMER_BUILD_TYPE).c_str());
  j += StrFormat("    \"sanitize_flags\": \"%s\",\n",
                 obs::JsonEscape(BOOMER_SANITIZE_FLAGS).c_str());
  j += StrFormat("    \"datasets\": \"%s\",\n",
                 obs::JsonEscape(DatasetsMetaString(flags)).c_str());
  j += StrFormat("    \"scale\": %.9g,\n", flags.scale);
  j += StrFormat("    \"seed\": %llu,\n",
                 static_cast<unsigned long long>(flags.seed));
  j += StrFormat("    \"instances\": %zu,\n", flags.instances);
  j += StrFormat("    \"iterations\": %d,\n", driver.iterations);
  j += StrFormat("    \"warmup\": %d,\n", driver.warmup);
  j += StrFormat("    \"smoke\": %s,\n", driver.smoke ? "true" : "false");
  j += StrFormat("    \"unix_time\": %lld\n",
                 static_cast<long long>(::time(nullptr)));
  j += "  },\n";
  j += "  \"iterations\": [\n";
  for (size_t i = 0; i < iterations.size(); ++i) {
    const IterationRecord& it = iterations[i];
    j += StrFormat("    {\"iter\": %d, \"seed\": %llu, "
                   "\"wall_seconds\": %.9g}%s\n",
                   it.iter, static_cast<unsigned long long>(it.seed),
                   it.wall_seconds, i + 1 < iterations.size() ? "," : "");
  }
  j += "  ],\n";
  j += "  \"series\": {\n";
  size_t emitted = 0;
  for (const auto& [name, samples] : series) {
    ++emitted;
    j += StrFormat(
        "    \"%s\": {\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g, "
        "\"mean\": %.9g, \"n\": %zu}%s\n",
        obs::JsonEscape(name).c_str(), Percentile(samples, 0.50),
        Percentile(samples, 0.95), Percentile(samples, 0.99), Mean(samples),
        samples.size(), emitted < series.size() ? "," : "");
  }
  j += "  },\n";
  j += "  \"metrics\": " + obs::Snapshot().ToJson() + "\n";
  j += "}\n";
  return j;
}

int Run(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], "list") == 0 ||
      std::strcmp(argv[1], "--help") == 0) {
    std::fputs(kUsage, stdout);
    return argc < 2 ? 2 : 0;
  }
  const std::string bench_name = argv[1];
  const bool is_exp3 = bench_name == "exp3_srt" ||
                       bench_name == "exp3_cap_time" ||
                       bench_name == "exp3_cap_size";
  if (!is_exp3 && bench_name != "micro_pml") {
    std::fprintf(stderr, "unknown subcommand '%s'\n%s", argv[1], kUsage);
    return 2;
  }

  // Split driver flags from the common bench flags.
  DriverFlags driver;
  bool iterations_set = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      driver.smoke = true;
    } else if (arg.rfind("--iterations=", 0) == 0) {
      driver.iterations = std::atoi(argv[i] + std::strlen("--iterations="));
      iterations_set = true;
    } else if (arg.rfind("--warmup=", 0) == 0) {
      driver.warmup = std::atoi(argv[i] + std::strlen("--warmup="));
    } else if (arg.rfind("--out=", 0) == 0) {
      driver.out = std::string(arg.substr(std::strlen("--out=")));
    } else {
      rest.push_back(argv[i]);
    }
  }
  bool help_requested = false;
  auto flags_or = ParseCommonFlags(static_cast<int>(rest.size()), rest.data(),
                                   &help_requested);
  if (help_requested) {
    std::fputs(kUsage, stdout);
    return 0;
  }
  if (!flags_or.ok()) {
    std::fprintf(stderr, "error: %s\n", flags_or.status().ToString().c_str());
    return 2;
  }
  CommonFlags flags = std::move(flags_or).value();
  if (driver.smoke) {
    // Tiny fixed preset so CI smoke runs finish in seconds: one small
    // dataset, the two cheapest templates, one instance.
    flags.scale = 0.01;
    flags.instances = 1;
    flags.datasets = {graph::DatasetKind::kWordNet};
    flags.queries = {query::kAllTemplates[0], query::kAllTemplates[1]};
    if (!iterations_set) driver.iterations = 3;
  }
  if (driver.iterations < 1 || driver.warmup < 0) {
    std::fprintf(stderr, "error: need --iterations>=1 and --warmup>=0\n");
    return 2;
  }

  const GridMode mode = bench_name == "exp3_cap_time" ? GridMode::kCapTime
                        : bench_name == "exp3_cap_size" ? GridMode::kCapSize
                                                        : GridMode::kSrt;
  DatasetRegistry registry(flags.cache_dir);
  obs::Enable();

  auto run_once = [&](uint64_t seed, SeriesMap* series) -> Status {
    if (is_exp3) return RunExp3Iteration(flags, &registry, mode, seed, series);
    return RunPmlIteration(flags, &registry, driver.smoke, seed, series);
  };

  for (int w = 0; w < driver.warmup; ++w) {
    Status s = run_once(flags.seed + 3, nullptr);
    if (!s.ok()) {
      std::fprintf(stderr, "warmup failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  // Warmup work (dataset generation, cache priming) must not pollute the
  // reported metrics snapshot.
  obs::ResetAll();

  SeriesMap series;
  std::vector<IterationRecord> iterations;
  for (int it = 0; it < driver.iterations; ++it) {
    const uint64_t seed = flags.seed + 3 + static_cast<uint64_t>(it);
    WallTimer timer;
    Status s = run_once(seed, &series);
    if (!s.ok()) {
      std::fprintf(stderr, "iteration %d failed: %s\n", it,
                   s.ToString().c_str());
      return 1;
    }
    IterationRecord rec;
    rec.iter = it;
    rec.seed = seed;
    rec.wall_seconds = timer.ElapsedSeconds();
    iterations.push_back(rec);
    std::fprintf(stderr, "iter %d/%d: %.3f s\n", it + 1, driver.iterations,
                 rec.wall_seconds);
  }

  const std::string json =
      BuildJson(bench_name, driver, flags, iterations, series);
  std::error_code ec;
  std::filesystem::create_directories(driver.out, ec);
  const std::string path = driver.out + "/BENCH_" + bench_name + ".json";
  Status write = WriteFileAtomic(path, json, FileKind::kText);
  if (!write.ok()) {
    std::fprintf(stderr, "error: %s\n", write.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%zu series, %d iterations)\n", path.c_str(),
              series.size(), driver.iterations);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace boomer

int main(int argc, char** argv) { return boomer::bench::Run(argc, argv); }
