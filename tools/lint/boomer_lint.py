#!/usr/bin/env python3
"""Project-specific lint for the BOOMER tree.

Registered as a ctest test (see the top-level CMakeLists.txt), so every
`ctest` run — plain or sanitized — enforces the repo invariants that generic
compilers cannot:

  include-guards   src/, bench/, and tests/ headers use BOOMER_<PATH>_H_
  stdout           library code under src/ never writes to stdout
                   (std::cout / printf / puts); logging goes through
                   util/logging.h.  The bench_util reporting surface, whose
                   contract *is* stdout, is allowlisted.
  naked-new        no naked `new` / `delete` in src/ — containers and
                   smart pointers own memory (escape: `boomer-lint-allow`).
  naked-ofstream   no direct `std::ofstream` in src/ — every writer persists
                   through util/atomic_file.h
                   (WriteFileAtomic: tmp + flush + rename + CRC footer) so a
                   crash can never tear a snapshot.  The helper itself is
                   allowlisted.
  rand             no rand()/srand()/random() anywhere; all randomness flows
                   through util/rng.h so runs stay seed-reproducible.
  using-namespace  no `using namespace std;`
  raw-thread       no raw `std::thread` — use std::jthread (or ThreadPool,
                   util/thread_pool.h): destruction then joins instead of
                   calling std::terminate, and blocking waits observe the
                   stop_token.  std::thread:: statics (hardware_concurrency)
                   stay legal.
  thread-detach    no `.detach()` — a detached thread outlives every
                   invariant this codebase can check; cancel through
                   stop_token and join instead.
  sleep-sync       no sleep_for/sleep_until/usleep/nanosleep outside util/
                   and tests/ — sleeping is not synchronization; wait on a
                   condition variable or stop_token.  (Tests may sleep to
                   ride out a watchdog poll; util/ owns the primitives.)
  wal-bypass       no fsync/fdatasync/O_APPEND in src/ outside util/wal.cc
                   and util/atomic_file.cc — durability has exactly two
                   blessed writers (the WAL and the atomic snapshot file);
                   ad-hoc append-and-sync code silently escapes the
                   crash-recovery contract RecoverAll relies on.
  system-clock     no std::chrono::system_clock in timing code outside
                   src/util/ and tests/ — wall-of-day time jumps (NTP,
                   suspend) and silently corrupts latency measurements;
                   every timer flows through util/timer.h (steady_clock)
                   and timestamps through time(nullptr).
  bench-stdout     bench/ binaries report through bench_util/reporting.h
                   (tables + "# paper-shape" annotations) or the
                   BENCH_*.json pipeline (tools/boomer_bench), never raw
                   std::cout/printf timing prints — ad-hoc prints are
                   invisible to tools/ci/bench_compare.py, so a regression
                   they would have shown cannot gate CI.
  raw-mutex        no raw std::mutex / std::lock_guard / std::unique_lock /
                   std::scoped_lock / std::condition_variable(_any) /
                   shared/recursive variants outside src/util/mutex.h —
                   every lock is a boomer::Mutex so it carries thread-safety
                   annotations and a LockRank; a raw mutex is invisible to
                   both the Clang Thread Safety gate and the runtime
                   lock-rank checker.
  rank-literal     every boomer::Mutex construction names a rank from the
                   central LockRank enum (LockRank::k...) at the
                   construction site, so the lock-order table in
                   util/mutex.h stays the single source of truth.
  raw-retry        no hand-rolled retry/backoff loops in src/ — a loop
                   whose condition counts attempts/retries/backoff is a
                   private retry policy with its own (usually unjittered,
                   deadline-blind) semantics.  Retries flow through
                   RetryPolicy (util/retry.h): seeded jitter, exponential
                   backoff, deadline awareness, one set of knobs.  The
                   policy's own implementation is allowlisted; genuine
                   rejection-sampling loops take a per-line escape.

A line (or its predecessor) containing `boomer-lint-allow(<rule>)` exempts
that single occurrence; use sparingly and explain why in the comment.
A line containing `boomer-lint-allow-file(<rule>)` exempts the whole file
from that rule — reserved for files whose contract IS the exception (e.g.
util/mutex.h wrapping std::mutex).

Exit status: 0 when clean, 1 with one "path:line: [rule] message" per finding.
"""

import argparse
import pathlib
import re
import sys

CXX_SUFFIXES = {".cc", ".cpp", ".h", ".hpp"}

# Files whose documented contract is writing results to stdout.
STDOUT_ALLOWLIST = {
    "src/bench_util/reporting.cc",
    "src/bench_util/reporting.h",
    "src/bench_util/flags.cc",
}

# The one blessed writer: everything else must funnel through it.
OFSTREAM_ALLOWLIST = {
    "src/util/atomic_file.cc",
    "src/util/atomic_file.h",
}

# The only files allowed to talk durability to the kernel directly.
WAL_BYPASS_ALLOWLIST = {
    "src/util/wal.cc",
    "src/util/atomic_file.cc",
}

# The one blessed retry implementation (util/retry.h) may count attempts.
RAW_RETRY_ALLOWLIST = {
    "src/util/retry.h",
    "src/util/retry.cc",
}

STDOUT_RE = re.compile(r"std::cout|\bprintf\s*\(|\bputs\s*\(|\bfputs\s*\(")
OFSTREAM_RE = re.compile(r"std::ofstream\b")
STDOUT_STDERR_OK_RE = re.compile(r"\bfprintf\s*\(\s*stderr|\bfputs\s*\([^,]*,\s*stderr")
NAKED_NEW_RE = re.compile(r"(^|[^\w.:>])new\s+[A-Za-z_:<]|(^|[^\w.:>])delete\s*(\[\s*\])?\s+?[A-Za-z_(*]")
RAND_RE = re.compile(r"(^|[^\w:.])(s?rand|random|rand_r|drand48)\s*\(")
USING_NAMESPACE_STD_RE = re.compile(r"using\s+namespace\s+std\s*;")
# std::thread as a type (declaration, member, vector<std::thread>) but not
# std::thread::hardware_concurrency() and friends.
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!\s*::)")
THREAD_DETACH_RE = re.compile(r"\.\s*detach\s*\(")
SLEEP_RE = re.compile(
    r"\bsleep_for\s*\(|\bsleep_until\s*\(|\busleep\s*\(|\bnanosleep\s*\(")
WAL_BYPASS_RE = re.compile(r"\bf(?:data)?sync\s*\(|\bO_APPEND\b")
SYSTEM_CLOCK_RE = re.compile(r"\bsystem_clock\b")
RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_mutex|recursive_timed_mutex"
    r"|shared_mutex|shared_timed_mutex|lock_guard|unique_lock|scoped_lock"
    r"|shared_lock|condition_variable|condition_variable_any)\b")
# A Mutex being constructed: `Mutex name{...}`, `Mutex name(...)` (with any
# qualifiers before), or make_unique/make_shared<Mutex>(...).  MutexLock and
# `Mutex&`/`Mutex*` parameters don't match (no `name {(` after the type).
MUTEX_CONSTRUCT_RE = re.compile(
    r"\bMutex\s+\w+\s*[{(]|make_(?:unique|shared)\s*<\s*Mutex\s*>\s*\(")
RANK_LITERAL_RE = re.compile(r"\bLockRank\s*::\s*k\w+")
# A for/while whose header manipulates an attempt/retry/backoff counter:
# `for (int attempt = 0; ...)`, `while (retries < max)`, `backoff *= 2` in
# the header.  `retry.ShouldRetry(st)` does NOT match (the member access
# `.` is not a comparison/arithmetic operator).
RAW_RETRY_RE = re.compile(
    r"\b(?:for|while)\s*\([^)]*\b(?:attempt|retr[a-z]*|backoff)\w*\s*"
    r"(?:[<>=!+\-]|\+\+)", re.IGNORECASE)
GUARD_RE = re.compile(r"^#ifndef\s+(\S+)", re.MULTILINE)
ALLOW_RE = re.compile(r"boomer-lint-allow\(([a-z-]+)\)")
ALLOW_FILE_RE = re.compile(r"boomer-lint-allow-file\(([a-z-]+)\)")

# Crude but effective: strip string literals and // comments so tokens inside
# them (e.g. the word 'delete' in a usage string) don't trip the scanners.
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')
LINE_COMMENT_RE = re.compile(r"//.*$")


def expected_guard(rel: pathlib.PurePosixPath) -> str:
    parts = list(rel.parts)
    if parts[0] == "src":
        parts = parts[1:]
    stem = "_".join(parts).replace(".", "_").replace("-", "_").upper()
    return f"BOOMER_{stem}_"


def scrubbed(line: str) -> str:
    return LINE_COMMENT_RE.sub("", STRING_RE.sub('""', line))


class Linter:
    def __init__(self, root: pathlib.Path):
        self.root = root
        self.findings: list[str] = []

    def report(self, rel, lineno, rule, message):
        self.findings.append(f"{rel}:{lineno}: [{rule}] {message}")

    def allowed(self, lines, idx, rule):
        for probe in (idx, idx - 1):
            if probe >= 0:
                m = ALLOW_RE.search(lines[probe])
                if m and m.group(1) == rule:
                    return True
        return False

    def lint_file(self, path: pathlib.Path):
        rel = pathlib.PurePosixPath(path.relative_to(self.root).as_posix())
        text = path.read_text(encoding="utf-8", errors="replace")
        lines = text.splitlines()
        top = rel.parts[0]
        in_src = top == "src"
        file_allowed = set(ALLOW_FILE_RE.findall(text))

        if path.suffix in {".h", ".hpp"} and top in {"src", "bench", "tests"}:
            want = expected_guard(rel)
            m = GUARD_RE.search(text)
            got = m.group(1) if m else None
            if got != want:
                self.report(rel, 1, "include-guards",
                            f"guard is {got or 'missing'}, want {want}")

        for idx, raw in enumerate(lines):
            line = scrubbed(raw)
            lineno = idx + 1

            if (in_src and str(rel) not in STDOUT_ALLOWLIST
                    and STDOUT_RE.search(line)
                    and not STDOUT_STDERR_OK_RE.search(line)
                    and not self.allowed(lines, idx, "stdout")):
                self.report(rel, lineno, "stdout",
                            "library code must not write to stdout; "
                            "use BOOMER_LOG or return strings")

            if (in_src and str(rel) not in OFSTREAM_ALLOWLIST
                    and OFSTREAM_RE.search(line)
                    and not self.allowed(lines, idx, "naked-ofstream")):
                self.report(rel, lineno, "naked-ofstream",
                            "direct file writes bypass crash-safety; "
                            "use WriteFileAtomic (util/atomic_file.h)")

            if (in_src and NAKED_NEW_RE.search(line)
                    and not self.allowed(lines, idx, "naked-new")):
                self.report(rel, lineno, "naked-new",
                            "no naked new/delete in src/; use containers "
                            "or smart pointers")

            if (RAND_RE.search(line)
                    and not self.allowed(lines, idx, "rand")):
                self.report(rel, lineno, "rand",
                            "unseeded libc randomness breaks reproducibility; "
                            "use boomer::Rng (util/rng.h)")

            if (USING_NAMESPACE_STD_RE.search(line)
                    and not self.allowed(lines, idx, "using-namespace")):
                self.report(rel, lineno, "using-namespace",
                            "'using namespace std' is banned")

            if (RAW_THREAD_RE.search(line)
                    and not self.allowed(lines, idx, "raw-thread")):
                self.report(rel, lineno, "raw-thread",
                            "raw std::thread terminates on unjoined "
                            "destruction; use std::jthread or ThreadPool")

            if (THREAD_DETACH_RE.search(line)
                    and not self.allowed(lines, idx, "thread-detach")):
                self.report(rel, lineno, "thread-detach",
                            "detached threads outlive every invariant; "
                            "cancel via stop_token and join")

            if (top not in ("tests",) and not str(rel).startswith("src/util/")
                    and SLEEP_RE.search(line)
                    and not self.allowed(lines, idx, "sleep-sync")):
                self.report(rel, lineno, "sleep-sync",
                            "sleeping is not synchronization; wait on a "
                            "condition variable or stop_token")

            if (top not in ("tests",) and not str(rel).startswith("src/util/")
                    and SYSTEM_CLOCK_RE.search(line)
                    and not self.allowed(lines, idx, "system-clock")):
                self.report(rel, lineno, "system-clock",
                            "system_clock jumps with wall time; measure "
                            "with WallTimer (util/timer.h, steady_clock) "
                            "and timestamp with time(nullptr)")

            if (top == "bench" and STDOUT_RE.search(line)
                    and not STDOUT_STDERR_OK_RE.search(line)
                    and not self.allowed(lines, idx, "bench-stdout")):
                self.report(rel, lineno, "bench-stdout",
                            "bench output must flow through "
                            "bench_util/reporting.h or BENCH_*.json "
                            "(tools/boomer_bench) so bench_compare.py "
                            "can gate on it")

            if (in_src and str(rel) not in WAL_BYPASS_ALLOWLIST
                    and WAL_BYPASS_RE.search(line)
                    and not self.allowed(lines, idx, "wal-bypass")):
                self.report(rel, lineno, "wal-bypass",
                            "fsync/O_APPEND outside util/wal.cc and "
                            "util/atomic_file.cc escapes the crash-recovery "
                            "contract; log through WalWriter or "
                            "WriteFileAtomic")

            if ("raw-mutex" not in file_allowed
                    and RAW_MUTEX_RE.search(line)
                    and not self.allowed(lines, idx, "raw-mutex")):
                self.report(rel, lineno, "raw-mutex",
                            "raw std:: locking is invisible to the "
                            "thread-safety and lock-rank checkers; use "
                            "boomer::Mutex/MutexLock/CondVar "
                            "(util/mutex.h)")

            if (in_src and str(rel) not in RAW_RETRY_ALLOWLIST
                    and "raw-retry" not in file_allowed
                    and RAW_RETRY_RE.search(line)
                    and not self.allowed(lines, idx, "raw-retry")):
                self.report(rel, lineno, "raw-retry",
                            "hand-rolled retry loops fragment backoff "
                            "semantics; drive retries through RetryPolicy "
                            "(util/retry.h)")

            if ("rank-literal" not in file_allowed
                    and MUTEX_CONSTRUCT_RE.search(line)
                    and not RANK_LITERAL_RE.search(line)
                    and not self.allowed(lines, idx, "rank-literal")):
                self.report(rel, lineno, "rank-literal",
                            "every Mutex construction must name its rank "
                            "from the central enum (LockRank::k..., "
                            "util/mutex.h) at the construction site")

    def run(self) -> int:
        scanned = 0
        for top in ("src", "bench", "tests", "tools", "examples"):
            base = self.root / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in CXX_SUFFIXES and path.is_file():
                    self.lint_file(path)
                    scanned += 1
        for finding in self.findings:
            print(finding)
        print(f"boomer_lint: {scanned} files scanned, "
              f"{len(self.findings)} finding(s)")
        return 1 if self.findings else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args()
    root = pathlib.Path(args.root).resolve()
    if not (root / "src").is_dir():
        print(f"boomer_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    return Linter(root).run()


if __name__ == "__main__":
    sys.exit(main())
