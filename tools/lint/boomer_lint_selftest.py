#!/usr/bin/env python3
"""Self-test for tools/lint/boomer_lint.py (ctest: boomer_lint_selftest).

One positive (must-flag) and one negative (must-pass) snippet per rule, so
a regex edit that silently stops a rule from firing — or starts flagging
blessed idioms — fails ctest instead of rotting unnoticed. Runs a real
Linter over a synthetic repo tree in a temp dir; stdlib unittest only (the
container has no pytest).
"""

import pathlib
import sys
import tempfile
import unittest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import boomer_lint  # noqa: E402


GUARD = "#ifndef BOOMER_{g}_\n#define BOOMER_{g}_\n#endif  // BOOMER_{g}_\n"


class LintHarness(unittest.TestCase):
    """Writes snippet files into a fake repo and runs the Linter on it."""

    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = pathlib.Path(self._tmp.name)
        (self.root / "src").mkdir()

    def tearDown(self):
        self._tmp.cleanup()

    def lint(self, relpath, body):
        path = self.root / relpath
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(body)
        linter = boomer_lint.Linter(self.root)
        linter.lint_file(path)
        return linter.findings

    def rules_flagged(self, relpath, body):
        return {f.split("[", 1)[1].split("]", 1)[0]
                for f in self.lint(relpath, body)}

    def assert_flags(self, rule, relpath, body):
        self.assertIn(rule, self.rules_flagged(relpath, body),
                      f"{rule} failed to fire on its positive snippet")

    def assert_clean(self, rule, relpath, body):
        self.assertNotIn(rule, self.rules_flagged(relpath, body),
                         f"{rule} fired on its negative snippet")


class IncludeGuards(LintHarness):
    def test_positive(self):
        self.assert_flags("include-guards", "src/core/thing.h",
                          "#ifndef WRONG_GUARD_H\n#define WRONG_GUARD_H\n")

    def test_negative(self):
        self.assert_clean("include-guards", "src/core/thing.h",
                          GUARD.format(g="CORE_THING_H"))


class Stdout(LintHarness):
    def test_positive(self):
        self.assert_flags("stdout", "src/core/a.cc",
                          'void F() { std::cout << "hi"; }\n')

    def test_negative(self):
        # stderr writes and non-src files are out of scope.
        self.assert_clean("stdout", "src/core/a.cc",
                          'void F() { fprintf(stderr, "hi"); }\n')
        self.assert_clean("stdout", "tools/t.cc",
                          'void F() { std::cout << "hi"; }\n')


class NakedNew(LintHarness):
    def test_positive(self):
        self.assert_flags("naked-new", "src/core/a.cc",
                          "int* p = new int[4];\n")

    def test_negative(self):
        self.assert_clean("naked-new", "src/core/a.cc",
                          "auto p = std::make_unique<int>(4);\n")


class NakedOfstream(LintHarness):
    def test_positive(self):
        self.assert_flags("naked-ofstream", "src/core/a.cc",
                          'std::ofstream out("f");\n')

    def test_negative(self):
        self.assert_clean("naked-ofstream", "src/util/atomic_file.cc",
                          'std::ofstream out("f");  // the blessed writer\n')


class Rand(LintHarness):
    def test_positive(self):
        self.assert_flags("rand", "src/core/a.cc",
                          "int r = rand();\n")

    def test_negative(self):
        self.assert_clean("rand", "src/core/a.cc",
                          "int r = rng.Next();  // operand(x) is fine\n")


class UsingNamespace(LintHarness):
    def test_positive(self):
        self.assert_flags("using-namespace", "src/core/a.cc",
                          "using namespace std;\n")

    def test_negative(self):
        self.assert_clean("using-namespace", "src/core/a.cc",
                          "using std::string;\n")


class RawThread(LintHarness):
    def test_positive(self):
        self.assert_flags("raw-thread", "src/core/a.cc",
                          "std::thread t([]{});\n")

    def test_negative(self):
        self.assert_clean("raw-thread", "src/core/a.cc",
                          "unsigned n = std::thread::hardware_concurrency();\n"
                          "std::jthread t([]{});\n")


class ThreadDetach(LintHarness):
    def test_positive(self):
        self.assert_flags("thread-detach", "src/core/a.cc",
                          "t.detach();\n")

    def test_negative(self):
        self.assert_clean("thread-detach", "src/core/a.cc",
                          "t.join();\n")


class SleepSync(LintHarness):
    def test_positive(self):
        self.assert_flags("sleep-sync", "src/core/a.cc",
                          "std::this_thread::sleep_for(1ms);\n")

    def test_negative(self):
        # tests/ may sleep to ride out a watchdog poll.
        self.assert_clean("sleep-sync", "tests/core/a_test.cc",
                          "std::this_thread::sleep_for(1ms);\n")


class WalBypass(LintHarness):
    def test_positive(self):
        self.assert_flags("wal-bypass", "src/core/a.cc",
                          "fsync(fd);\n")

    def test_negative(self):
        self.assert_clean("wal-bypass", "src/util/wal.cc",
                          "fsync(fd);  // the blessed durability writer\n")


class SystemClock(LintHarness):
    def test_positive(self):
        self.assert_flags("system-clock", "src/core/a.cc",
                          "auto t = std::chrono::system_clock::now();\n")

    def test_negative(self):
        self.assert_clean("system-clock", "src/core/a.cc",
                          "auto t = std::chrono::steady_clock::now();\n")


class BenchStdout(LintHarness):
    def test_positive(self):
        self.assert_flags("bench-stdout", "bench/b.cc",
                          'std::cout << "took " << ms << "ms";\n')

    def test_negative(self):
        self.assert_clean("bench-stdout", "bench/b.cc",
                          "reporting::Table(rows).Print();\n")


class RawMutex(LintHarness):
    def test_positive(self):
        for snippet in ("std::mutex mu;\n",
                        "std::lock_guard<std::mutex> lock(mu);\n",
                        "std::unique_lock<std::mutex> lock(mu);\n",
                        "std::scoped_lock lock(a, b);\n",
                        "std::condition_variable cv;\n",
                        "std::condition_variable_any cv;\n",
                        "std::shared_mutex smu;\n",
                        "std::recursive_mutex rmu;\n"):
            self.assert_flags("raw-mutex", "src/core/a.cc", snippet)
        # The rule also covers tests/ and tools/: the checkers are
        # process-wide, so an unranked test lock hides inversions too.
        self.assert_flags("raw-mutex", "tests/core/a_test.cc",
                          "std::mutex mu;\n")

    def test_negative(self):
        self.assert_clean("raw-mutex", "src/core/a.cc",
                          "Mutex mu{LockRank::kLeaf};\n"
                          "MutexLock lock(&mu);\n"
                          "CondVar cv;\n")
        # The wrapper header itself is exempted wholesale via allow-file.
        self.assert_clean(
            "raw-mutex", "src/util/my_mutex.h",
            GUARD.format(g="UTIL_MY_MUTEX_H") +
            "// boomer-lint-allow-file(raw-mutex): the blessed wrapper.\n"
            "std::mutex mu_;\n"
            "std::condition_variable_any cv_;\n")


class RankLiteral(LintHarness):
    def test_positive(self):
        for snippet in ("Mutex mu{rank};\n",
                        "mutable Mutex mu_{some_variable};\n",
                        "Mutex mu(ComputeRank());\n",
                        "auto mu = std::make_unique<Mutex>(rank);\n"):
            self.assert_flags("rank-literal", "src/core/a.cc", snippet)

    def test_negative(self):
        for snippet in ("Mutex mu{LockRank::kLeaf};\n",
                        "mutable Mutex mu_{LockRank::kObsRegistry};\n",
                        "auto mu = std::make_unique<Mutex>("
                        "LockRank::kWatchdog);\n",
                        # Non-construction uses of the type never match.
                        "void F(Mutex* mu);\n"
                        "MutexLock lock(&mu);\n"):
            self.assert_clean("rank-literal", "src/core/a.cc", snippet)


class RawRetry(LintHarness):
    def test_positive(self):
        for snippet in ("for (int attempt = 0; attempt < 3; ++attempt) {}\n",
                        "for (int attempts = 0; attempts < 32; ++attempts)\n",
                        "while (retries < max_retries) { Try(); }\n",
                        "while (retry_count-- > 0) {}\n",
                        "for (; backoff_us < cap; backoff_us *= 2) {}\n"):
            self.assert_flags("raw-retry", "src/core/a.cc", snippet)

    def test_negative(self):
        # The canonical RetryPolicy loop: member calls, no counter math.
        self.assert_clean("raw-retry", "src/core/a.cc",
                          "while (!st.ok() && retry.ShouldRetry(st)) {\n"
                          "  retry.Backoff();\n"
                          "  st = TryOnce();\n"
                          "}\n")
        # The policy implementation itself may count attempts.
        self.assert_clean("raw-retry", "src/util/retry.cc",
                          "for (int attempt = 0; attempt < 3; ++attempt) {}\n")
        # Outside src/ (tests, tools) is out of scope.
        self.assert_clean("raw-retry", "tests/core/a_test.cc",
                          "for (int attempt = 0; attempt < 3; ++attempt) {}\n")
        # Rejection-sampling loops take the per-line escape.
        self.assert_clean(
            "raw-retry", "src/core/a.cc",
            "// boomer-lint-allow(raw-retry): rejection sampling, not retry\n"
            "for (int attempts = 0; attempts < 32; ++attempts) {}\n")
        # Unrelated loop counters never match.
        self.assert_clean("raw-retry", "src/core/a.cc",
                          "for (size_t i = 0; i < n; ++i) {}\n")


class AllowEscapes(LintHarness):
    def test_single_line_allow(self):
        self.assert_clean(
            "raw-mutex", "src/core/a.cc",
            "// boomer-lint-allow(raw-mutex): testing the escape hatch\n"
            "std::mutex mu;\n")

    def test_allow_file_is_rule_scoped(self):
        # allow-file(raw-mutex) must not swallow other rules' findings.
        flagged = self.rules_flagged(
            "src/core/a.cc",
            "// boomer-lint-allow-file(raw-mutex)\n"
            "std::mutex mu;\n"
            "int* p = new int[4];\n")
        self.assertNotIn("raw-mutex", flagged)
        self.assertIn("naked-new", flagged)


class RepoIsClean(LintHarness):
    def test_real_tree_has_no_findings(self):
        # The clean-baseline assertion, run against the actual repository:
        # the linter itself must exit 0 over the real tree.
        repo = pathlib.Path(__file__).resolve().parents[2]
        linter = boomer_lint.Linter(repo)
        for top in ("src", "bench", "tests", "tools", "examples"):
            base = repo / top
            if not base.is_dir():
                continue
            for path in sorted(base.rglob("*")):
                if path.suffix in boomer_lint.CXX_SUFFIXES and path.is_file():
                    linter.lint_file(path)
        self.assertEqual(linter.findings, [])


if __name__ == "__main__":
    unittest.main()
